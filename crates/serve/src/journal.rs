//! The durable registry journal: an append-only manifest of session
//! transitions, compacted into checkpoints.
//!
//! The journal is one file, `registry.afdj`, inside the server's
//! `spill_dir`. Its content is a sequence of standard afd-wire frames:
//! at most one leading [`ManifestCheckpoint`] (the compacted state of
//! every slot at some instant) followed by [`ManifestRecord`]s, one per
//! registry transition since. Each frame carries its own FNV-1a
//! checksum, so the only undetectable failure mode is a cleanly
//! truncated tail — which [`Journal::load`] reports as
//! `truncated_bytes` rather than replaying garbage.
//!
//! Durability policy is the server's [`DurabilityConfig`]:
//!
//! * `fsync_every = n` — fsync the journal after every `n`th append
//!   (1 = every transition is durable the moment its call returns;
//!   larger values trade a bounded window of re-loseable transitions
//!   for throughput, measured in `BENCH_durability.json`);
//! * `compact_factor` / `compact_min` — when the record count since the
//!   last checkpoint exceeds `max(compact_min, live_slots ×
//!   compact_factor)`, the owner rewrites the journal as a single fresh
//!   checkpoint (atomically: tmp → rename), so the journal's size tracks
//!   the live set, not the server's lifetime.
//!
//! All disk traffic goes through the crate's [`Persister`], so crash
//! injection covers journal appends, fsyncs and compaction renames
//! exactly like spill writes.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::path::{Path, PathBuf};

use afd_wire::{
    encode_framed, read_frame, Decode, ManifestCheckpoint, ManifestOp, ManifestRecord,
    KIND_MANIFEST_CHECKPOINT, KIND_MANIFEST_RECORD,
};

use crate::error::ServeError;
use crate::persist::Persister;

/// File name of the registry journal inside `spill_dir`.
pub(crate) const JOURNAL_FILE: &str = "registry.afdj";

/// How aggressively the server makes registry state durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Keep a registry journal at all. `false` restores the pre-journal
    /// behaviour: RAM-only registry, spill files swept on drop, nothing
    /// recoverable — for throwaway servers and tests that reuse a
    /// directory across instances.
    pub journal: bool,
    /// Fsync the journal after every `n`th append (≥ 1). With 1 every
    /// acknowledged transition survives a crash; with `n` the last
    /// `n − 1` transitions may be re-lost (spill files themselves are
    /// always fully synced before their journal record is written).
    pub fsync_every: u64,
    /// Compact when records-since-checkpoint exceed `live_slots ×
    /// compact_factor` (≥ 1).
    pub compact_factor: u64,
    /// …but never compact before this many records have accumulated
    /// (keeps small registries from checkpointing constantly).
    pub compact_min: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            journal: true,
            fsync_every: 1,
            compact_factor: 4,
            compact_min: 1024,
        }
    }
}

impl DurabilityConfig {
    /// No journal, no recovery; spill files are swept when the server
    /// drops. The pre-durability contract.
    pub fn ephemeral() -> Self {
        DurabilityConfig {
            journal: false,
            ..DurabilityConfig::default()
        }
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.journal && self.fsync_every == 0 {
            return Err(ServeError::Config("fsync_every must be >= 1".into()));
        }
        if self.journal && self.compact_factor == 0 {
            return Err(ServeError::Config("compact_factor must be >= 1".into()));
        }
        Ok(())
    }
}

/// One parsed journal frame, in file order.
#[derive(Debug)]
pub(crate) enum JournalEvent {
    Checkpoint(ManifestCheckpoint),
    Record(ManifestRecord),
}

/// Everything [`Journal::load`] learned from an existing journal file.
#[derive(Debug, Default)]
pub(crate) struct JournalLoad {
    pub events: Vec<JournalEvent>,
    /// Bytes of unreadable tail (torn final append) that were ignored.
    pub truncated_bytes: u64,
    /// Total well-formed record frames (checkpoints not counted).
    pub records: usize,
}

/// A slot's state as reconstructed by [`replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayState {
    Free,
    Resident,
    Spilled { len: u64 },
}

/// One slot after replay: the generation the slot is currently on (for
/// free slots: the generation the *next* tenant will get).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplaySlot {
    pub generation: u32,
    pub state: ReplayState,
}

/// Fold journal events into per-slot end states.
pub(crate) fn replay(events: &[JournalEvent]) -> (BTreeMap<u32, ReplaySlot>, u64) {
    let mut slots: BTreeMap<u32, ReplaySlot> = BTreeMap::new();
    let mut next_seq = 0u64;
    for event in events {
        match event {
            JournalEvent::Checkpoint(cp) => {
                slots.clear();
                next_seq = cp.next_seq;
                for e in &cp.entries {
                    let state = match e.status {
                        afd_wire::SlotStatus::Free => ReplayState::Free,
                        afd_wire::SlotStatus::Resident => ReplayState::Resident,
                        afd_wire::SlotStatus::Spilled => ReplayState::Spilled { len: e.spill_len },
                    };
                    slots.insert(
                        e.slot,
                        ReplaySlot {
                            generation: e.generation,
                            state,
                        },
                    );
                }
            }
            JournalEvent::Record(rec) => {
                next_seq = rec.seq + 1;
                let slot = ReplaySlot {
                    generation: rec.generation,
                    state: match rec.op {
                        ManifestOp::Register | ManifestOp::Restore => ReplayState::Resident,
                        ManifestOp::RegisterSnapshot | ManifestOp::Evict => {
                            ReplayState::Spilled { len: rec.spill_len }
                        }
                        ManifestOp::Release => ReplayState::Free,
                    },
                };
                let slot = if rec.op == ManifestOp::Release {
                    // A released slot's next tenant gets the bumped
                    // generation, exactly like `Slab::remove`.
                    ReplaySlot {
                        generation: rec.generation.wrapping_add(1),
                        state: ReplayState::Free,
                    }
                } else {
                    slot
                };
                slots.insert(rec.slot, slot);
            }
        }
    }
    (slots, next_seq)
}

/// The open, append-only journal of a live server.
#[derive(Debug)]
pub(crate) struct Journal {
    #[cfg_attr(not(test), allow(dead_code))]
    path: PathBuf,
    file: File,
    next_seq: u64,
    records_since_checkpoint: u64,
    appends_since_sync: u64,
    cfg: DurabilityConfig,
}

impl Journal {
    pub(crate) fn path_in(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Create a brand-new journal in `dir`. Refuses (with
    /// [`ServeError::Config`]) if one already exists: an existing
    /// journal means durable state that `AfdServe::recover` — not a
    /// fresh server — must adopt.
    pub(crate) fn create(dir: &Path, cfg: DurabilityConfig) -> Result<Self, ServeError> {
        let path = Self::path_in(dir);
        match std::fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
        {
            Ok(file) => Ok(Journal {
                path,
                file,
                next_seq: 0,
                records_since_checkpoint: 0,
                appends_since_sync: 0,
                cfg,
            }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(ServeError::Config(format!(
                    "{} already holds a registry journal; use AfdServe::recover \
                     (or DurabilityConfig::ephemeral for a throwaway server)",
                    dir.display()
                )))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Rewrite the journal as `checkpoint` alone (atomic tmp → rename),
    /// then reopen for appending. Used by compaction and by recovery to
    /// seal what it rebuilt.
    pub(crate) fn rewrite(
        dir: &Path,
        checkpoint: &ManifestCheckpoint,
        cfg: DurabilityConfig,
        persister: &mut Persister,
    ) -> Result<Self, ServeError> {
        let path = Self::path_in(dir);
        let bytes = encode_framed(KIND_MANIFEST_CHECKPOINT, checkpoint)
            .map_err(|e| ServeError::Engine(afd_engine::AfdError::Wire(e)))?;
        persister.write_atomic(&path, &bytes)?;
        let file = persister.open_append(&path)?;
        Ok(Journal {
            path,
            file,
            next_seq: checkpoint.next_seq,
            records_since_checkpoint: 0,
            appends_since_sync: 0,
            cfg,
        })
    }

    /// Append one transition record; fsync per the configured cadence.
    /// On success returns the sequence number the record was written
    /// under.
    pub(crate) fn append(
        &mut self,
        persister: &mut Persister,
        op: ManifestOp,
        slot: u32,
        generation: u32,
        spill_len: u64,
    ) -> Result<u64, ServeError> {
        let rec = ManifestRecord {
            seq: self.next_seq,
            op,
            slot,
            generation,
            spill_len,
        };
        let bytes = encode_framed(KIND_MANIFEST_RECORD, &rec)
            .map_err(|e| ServeError::Engine(afd_engine::AfdError::Wire(e)))?;
        persister.write_all(&mut self.file, &bytes)?;
        self.next_seq += 1;
        self.records_since_checkpoint += 1;
        self.appends_since_sync += 1;
        if self.appends_since_sync >= self.cfg.fsync_every {
            persister.sync(&self.file)?;
            self.appends_since_sync = 0;
        }
        Ok(rec.seq)
    }

    /// Force-fsync any appends still in the page cache.
    pub(crate) fn sync_now(&mut self, persister: &mut Persister) -> Result<(), ServeError> {
        if self.appends_since_sync > 0 {
            persister.sync(&self.file)?;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Should the owner compact, given `live` occupied slots?
    pub(crate) fn should_compact(&self, live: usize) -> bool {
        let threshold = (live as u64)
            .saturating_mul(self.cfg.compact_factor)
            .max(self.cfg.compact_min);
        self.records_since_checkpoint > threshold
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    #[cfg(test)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Parse an existing journal file. `Ok(None)` when `dir` has no
    /// journal at all. Parsing stops at the first unreadable frame —
    /// a torn tail is expected after a crash and is *reported*, never
    /// replayed and never fatal.
    pub(crate) fn load(dir: &Path) -> Result<Option<JournalLoad>, ServeError> {
        let path = Self::path_in(dir);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut load = JournalLoad::default();
        let mut off = 0usize;
        while off < bytes.len() {
            match read_frame(&bytes[off..]) {
                Ok((KIND_MANIFEST_CHECKPOINT, payload, consumed)) => {
                    match ManifestCheckpoint::decode_exact(payload) {
                        Ok(cp) => load.events.push(JournalEvent::Checkpoint(cp)),
                        Err(_) => break,
                    }
                    off += consumed;
                }
                Ok((KIND_MANIFEST_RECORD, payload, consumed)) => {
                    match ManifestRecord::decode_exact(payload) {
                        Ok(rec) => {
                            load.records += 1;
                            load.events.push(JournalEvent::Record(rec));
                        }
                        Err(_) => break,
                    }
                    off += consumed;
                }
                // Unknown kind or torn/corrupt frame: stop here.
                Ok(_) | Err(_) => break,
            }
        }
        load.truncated_bytes = (bytes.len() - off) as u64;
        Ok(Some(load))
    }
}

/// Convenience used by tests.
#[cfg(test)]
pub(crate) fn checkpoint_bytes(cp: &ManifestCheckpoint) -> usize {
    use afd_wire::Encode;
    cp.encoded_len() + afd_wire::FRAME_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_wire::{CheckpointEntry, SlotStatus};

    fn tdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("afd-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_load_replay_roundtrip() {
        let dir = tdir("rt");
        let mut p = Persister::new(None);
        let cfg = DurabilityConfig::default();
        let mut j = Journal::create(&dir, cfg).unwrap();
        j.append(&mut p, ManifestOp::Register, 0, 0, 0).unwrap();
        j.append(&mut p, ManifestOp::Evict, 0, 0, 512).unwrap();
        j.append(&mut p, ManifestOp::Register, 1, 0, 0).unwrap();
        j.append(&mut p, ManifestOp::Release, 1, 0, 0).unwrap();
        j.append(&mut p, ManifestOp::Restore, 0, 0, 0).unwrap();

        let load = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(load.records, 5);
        assert_eq!(load.truncated_bytes, 0);
        let (slots, next_seq) = replay(&load.events);
        assert_eq!(next_seq, 5);
        assert_eq!(slots[&0].state, ReplayState::Resident);
        assert_eq!(slots[&0].generation, 0);
        assert_eq!(slots[&1].state, ReplayState::Free);
        assert_eq!(slots[&1].generation, 1, "release bumps the generation");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_server_refuses_existing_journal() {
        let dir = tdir("refuse");
        let cfg = DurabilityConfig::default();
        let _j = Journal::create(&dir, cfg).unwrap();
        let err = Journal::create(&dir, cfg).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)), "{err}");
        assert!(err.to_string().contains("recover"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tdir("torn");
        let mut p = Persister::new(None);
        let cfg = DurabilityConfig::default();
        let mut j = Journal::create(&dir, cfg).unwrap();
        j.append(&mut p, ManifestOp::Register, 0, 0, 0).unwrap();
        j.append(&mut p, ManifestOp::Register, 1, 0, 0).unwrap();
        drop(j);

        // Tear the last frame in half.
        let path = Journal::path_in(&dir);
        let bytes = fs::read(&path).unwrap();
        let torn = bytes.len() - 10;
        fs::write(&path, &bytes[..torn]).unwrap();

        let load = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(load.records, 1, "only the intact record replays");
        assert!(load.truncated_bytes > 0);
        let (slots, _) = replay(&load.events);
        assert!(slots.contains_key(&0));
        assert!(!slots.contains_key(&1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rewrite_compacts_and_replays() {
        let dir = tdir("cp");
        let mut p = Persister::new(None);
        let cfg = DurabilityConfig {
            compact_min: 2,
            compact_factor: 1,
            ..DurabilityConfig::default()
        };
        let mut j = Journal::create(&dir, cfg).unwrap();
        for i in 0..6u32 {
            j.append(&mut p, ManifestOp::Register, i, 0, 0).unwrap();
        }
        assert!(j.should_compact(1));
        assert!(!j.should_compact(100));
        let before = fs::metadata(j.path()).unwrap().len();

        let cp = ManifestCheckpoint {
            next_seq: j.next_seq(),
            entries: vec![CheckpointEntry {
                slot: 3,
                generation: 7,
                status: SlotStatus::Spilled,
                spill_len: 99,
            }],
        };
        let j = Journal::rewrite(&dir, &cp, cfg, &mut p).unwrap();
        let after = fs::metadata(j.path()).unwrap().len();
        assert!(after < before, "{after} !< {before}");
        assert_eq!(after as usize, checkpoint_bytes(&cp));

        let load = Journal::load(&dir).unwrap().unwrap();
        let (slots, next_seq) = replay(&load.events);
        assert_eq!(next_seq, 6);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[&3].state, ReplayState::Spilled { len: 99 });
        assert_eq!(slots[&3].generation, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_config_validates() {
        assert!(DurabilityConfig::default().validate().is_ok());
        assert!(DurabilityConfig::ephemeral().validate().is_ok());
        let bad = DurabilityConfig {
            fsync_every: 0,
            ..DurabilityConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = DurabilityConfig {
            compact_factor: 0,
            ..DurabilityConfig::default()
        };
        assert!(bad.validate().is_err());
        // Ephemeral servers never touch the journal knobs.
        let eph = DurabilityConfig {
            fsync_every: 0,
            ..DurabilityConfig::ephemeral()
        };
        assert!(eph.validate().is_ok());
    }
}
