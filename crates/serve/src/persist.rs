//! Atomic spill-file persistence with deterministic crash injection.
//!
//! Every byte `afd-serve` puts on disk goes through the [`Persister`] in
//! this module, which enforces the one rule that makes crash recovery
//! tractable: **a file either has its old content or its new content,
//! never a torn middle**. Writes go tmp-file → `write_all` →
//! `sync_all` → atomic `rename` (→ directory fsync on unix), so a crash
//! at any byte boundary leaves at worst a stale `*.tmp` for recovery to
//! quarantine.
//!
//! The same choke point is where faults are injected. A [`CrashPlan`]
//! (the serve-layer sibling of `afd-stream`'s `FaultPlan`) is seeded,
//! derives one persistence *site* (the Nth primitive disk operation) and
//! one [`CrashKind`], and when that site is reached the persister
//! simulates the process dying right there:
//!
//! * [`CrashKind::Kill`] — the operation never happens (power cut before
//!   the syscall);
//! * [`CrashKind::Torn`] — half the bytes land (power cut mid-write);
//! * [`CrashKind::Garble`] — the bytes land bit-flipped (a lying disk /
//!   lost sync), including a variant where the corrupt file *is* renamed
//!   into place, exercising checksum-based quarantine of a final-named
//!   file.
//!
//! After the plan fires every subsequent operation also fails — a dead
//! process does not keep writing. The injected failure is the dedicated
//! [`ServeError::InjectedCrash`] variant so tests can tell a simulated
//! death from a real I/O error. Production servers never construct a
//! plan; the hooks compile to a counter increment and a `None` check.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ServeError;

/// How an injected crash mangles the operation it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The operation is skipped entirely (died before the syscall).
    Kill,
    /// A write lands only its first half (died mid-`write`).
    Torn,
    /// The bytes land with one bit flipped (storage corruption); on a
    /// rename site the corrupted tmp is renamed into place first.
    Garble,
}

/// A seeded, single-shot crash at one persistence site.
///
/// Mirrors `afd_stream::FaultPlan`: derive everything from one `u64`
/// seed so a proptest failure is a replayable seed, not a flake. Site
/// counting is global across journal appends, spill writes, fsyncs,
/// renames and removals — every primitive disk operation is a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The seed the plan was derived from (echoed in test output).
    pub seed: u64,
    /// The 1-based primitive-operation index the crash fires at; plans
    /// whose site exceeds the run's operation count never fire.
    pub site: u64,
    /// What the crash does to the operation it fires on.
    pub kind: CrashKind,
}

impl CrashPlan {
    /// Derive a plan from `seed`, placing the crash uniformly in
    /// `1..=max_site` with a uniformly chosen [`CrashKind`].
    pub fn single(seed: u64, max_site: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let site = rng.gen_range(1..=max_site);
        let kind = match rng.gen_range(0..3u32) {
            0 => CrashKind::Kill,
            1 => CrashKind::Torn,
            _ => CrashKind::Garble,
        };
        CrashPlan { seed, site, kind }
    }
}

/// The single gate every serve-layer disk operation passes through.
#[derive(Debug, Default)]
pub(crate) struct Persister {
    crash: Option<CrashPlan>,
    /// When set, every write reports `ENOSPC` without touching disk —
    /// the deterministic stand-in for a full spill device.
    disk_full: bool,
    /// Primitive operations performed so far (site counter).
    ops: u64,
    /// A plan already fired: the simulated process is dead.
    dead: bool,
}

impl Persister {
    pub(crate) fn new(crash: Option<CrashPlan>) -> Self {
        Persister {
            crash,
            ..Persister::default()
        }
    }

    pub(crate) fn set_disk_full(&mut self, full: bool) {
        self.disk_full = full;
    }

    /// Count one primitive operation; decide whether the plan fires on
    /// it. Returns the kind to apply, or an error if already dead.
    fn site(&mut self) -> Result<Option<CrashKind>, ServeError> {
        if self.dead {
            return Err(ServeError::InjectedCrash(self.ops));
        }
        self.ops += 1;
        match self.crash {
            Some(plan) if self.ops >= plan.site => {
                self.dead = true;
                Ok(Some(plan.kind))
            }
            _ => Ok(None),
        }
    }

    fn crashed(&self) -> ServeError {
        ServeError::InjectedCrash(self.ops)
    }

    /// `write_all` with injection. `Torn` lands half the bytes, `Garble`
    /// lands all of them with one bit flipped.
    pub(crate) fn write_all(&mut self, file: &mut File, bytes: &[u8]) -> Result<(), ServeError> {
        if self.disk_full && !self.dead {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "spill device full (injected)",
            )));
        }
        match self.site()? {
            None => {
                file.write_all(bytes)?;
                Ok(())
            }
            Some(CrashKind::Kill) => Err(self.crashed()),
            Some(CrashKind::Torn) => {
                file.write_all(&bytes[..bytes.len() / 2])?;
                let _ = file.sync_all();
                Err(self.crashed())
            }
            Some(CrashKind::Garble) => {
                file.write_all(&garble(bytes, self.ops))?;
                let _ = file.sync_all();
                Err(self.crashed())
            }
        }
    }

    /// `sync_all` with injection (`Kill`-style only: the sync simply
    /// never happens — content effects belong to the write sites).
    pub(crate) fn sync(&mut self, file: &File) -> Result<(), ServeError> {
        match self.site()? {
            None => {
                file.sync_all()?;
                Ok(())
            }
            Some(_) => Err(self.crashed()),
        }
    }

    /// Atomic `rename` with injection. `Kill`/`Torn` leave the source in
    /// place; `Garble` corrupts the source *and renames it*, modelling
    /// corruption that survives into the final-named file.
    pub(crate) fn rename(&mut self, from: &Path, to: &Path) -> Result<(), ServeError> {
        match self.site()? {
            None => {
                fs::rename(from, to)?;
                Ok(())
            }
            Some(CrashKind::Kill) | Some(CrashKind::Torn) => Err(self.crashed()),
            Some(CrashKind::Garble) => {
                if let Ok(bytes) = fs::read(from) {
                    if !bytes.is_empty() {
                        let _ = fs::write(from, garble(&bytes, self.ops));
                    }
                }
                let _ = fs::rename(from, to);
                Err(self.crashed())
            }
        }
    }

    /// `remove_file` with injection (`Kill`-style only: the file simply
    /// survives, which recovery must tolerate as a stale spill).
    pub(crate) fn remove(&mut self, path: &Path) -> Result<(), ServeError> {
        match self.site()? {
            None => {
                fs::remove_file(path)?;
                Ok(())
            }
            Some(_) => Err(self.crashed()),
        }
    }

    /// Write `bytes` to `path` atomically: tmp file → `write_all` →
    /// `sync_all` → `rename` → parent-directory fsync. A crash anywhere
    /// leaves either the old `path` content or the new one, plus at
    /// worst a `*.tmp` stray.
    pub(crate) fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
        let tmp = tmp_path(path);
        {
            let mut file = File::create(&tmp)?;
            self.write_all(&mut file, bytes)?;
            self.sync(&file)?;
        }
        self.rename(&tmp, path)?;
        sync_parent_dir(path)?;
        Ok(())
    }

    /// Open `path` append-only (creating it), for journal use.
    pub(crate) fn open_append(&self, path: &Path) -> Result<File, ServeError> {
        Ok(OpenOptions::new().create(true).append(true).open(path)?)
    }
}

/// `bytes` with a single deterministic bit flip.
fn garble(bytes: &[u8], salt: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let pos = (salt as usize).wrapping_mul(2654435761) % out.len().max(1);
    if let Some(b) = out.get_mut(pos) {
        *b ^= 1 << (salt % 8);
    }
    out
}

/// The staging name for an atomic write of `path`.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// fsync the directory containing `path` so the rename itself is
/// durable (no-op off unix, where the concept does not map cleanly).
fn sync_parent_dir(path: &Path) -> Result<(), ServeError> {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// True when an I/O error means "disk full" (`ENOSPC`), which the evict
/// path converts to typed backpressure instead of dropping state.
pub(crate) fn is_disk_full(err: &ServeError) -> bool {
    matches!(err, ServeError::Io(e) if e.kind() == std::io::ErrorKind::StorageFull)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_all_kinds() {
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            let a = CrashPlan::single(seed, 40);
            let b = CrashPlan::single(seed, 40);
            assert_eq!(a, b);
            assert!((1..=40).contains(&a.site));
            kinds.insert(format!("{:?}", a.kind));
        }
        assert_eq!(kinds.len(), 3, "all three kinds reachable: {kinds:?}");
    }

    #[test]
    fn atomic_write_replaces_or_preserves_never_tears() {
        let dir = std::env::temp_dir().join(format!("afd-persist-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        fs::write(&path, b"old-content").unwrap();

        // A clean atomic write replaces the content.
        let mut clean = Persister::new(None);
        clean.write_atomic(&path, b"new-content-longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new-content-longer");
        assert!(!tmp_path(&path).exists());

        // A crash at every site (write, sync, rename) leaves old-or-new,
        // never a torn target.
        for site in 1..=3u64 {
            for kind in [CrashKind::Kill, CrashKind::Torn, CrashKind::Garble] {
                fs::write(&path, b"old-content").unwrap();
                let _ = fs::remove_file(tmp_path(&path));
                let mut p = Persister::new(Some(CrashPlan {
                    seed: 0,
                    site,
                    kind,
                }));
                let err = p.write_atomic(&path, b"new-content-longer").unwrap_err();
                assert!(matches!(err, ServeError::InjectedCrash(_)), "{err}");
                let got = fs::read(&path).unwrap();
                let garbled_new = {
                    // A Garble rename lands a bit-flipped new payload —
                    // same length, wrong bytes, caught by checksums.
                    got.len() == b"new-content-longer".len() && got != b"new-content-longer"
                };
                assert!(
                    got == b"old-content" || got == b"new-content-longer" || garbled_new,
                    "torn target at site {site} {kind:?}: {got:?}"
                );
                // And once dead, everything fails.
                assert!(matches!(
                    p.write_atomic(&path, b"x"),
                    Err(ServeError::InjectedCrash(_))
                ));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_full_is_typed_and_nondestructive() {
        let dir = std::env::temp_dir().join(format!("afd-persist-full-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        fs::write(&path, b"keep").unwrap();
        let mut p = Persister::new(None);
        p.set_disk_full(true);
        let err = p.write_atomic(&path, b"replacement").unwrap_err();
        assert!(is_disk_full(&err), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"keep");
        p.set_disk_full(false);
        p.write_atomic(&path, b"replacement").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"replacement");
        fs::remove_dir_all(&dir).unwrap();
    }
}
