//! The multi-tenant session server: budgeted tick scheduler, admission
//! control and cold-session eviction over the slab registry.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use afd_engine::{
    AfdEngine, DeltaRequest, RestoreRequest, SnapshotRequest, StreamBackend, SubscribeRequest,
};
use afd_relation::Fd;
use afd_stream::{RowDelta, SessionSnapshot, StreamScores};

use crate::error::{BackpressureScope, ServeError};
use crate::registry::{SessionHandle, Slab};

/// Per-tick work bounds. A tick stops at whichever limit it hits first,
/// so one call to [`AfdServe::tick`] can never run away regardless of
/// how much is queued.
#[derive(Debug, Clone, Copy)]
pub struct TickBudget {
    /// Most deltas applied per tick, across all sessions.
    pub max_deltas: usize,
    /// Most deltas applied per session per scheduler visit — the
    /// fairness knob. A session with more pending goes back to the end
    /// of the ready ring, so a hot tenant advances the ring, not blocks
    /// it.
    pub session_burst: usize,
    /// Optional wall-clock budget in microseconds, checked between
    /// session visits (restore cost counts against it).
    pub max_micros: Option<u64>,
}

impl Default for TickBudget {
    fn default() -> Self {
        TickBudget {
            max_deltas: 256,
            session_burst: 32,
            max_micros: None,
        }
    }
}

/// Server-wide knobs. Built with [`ServeConfig::new`] (the spill
/// directory is the one mandatory choice), then adjusted field-wise.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most sessions resident (engine in memory) at once; the LRU rest
    /// live as framed snapshots in `spill_dir`. At least 1.
    pub resident_cap: usize,
    /// Most pending deltas per session before [`ServeError::Backpressure`].
    pub session_queue_cap: usize,
    /// Most pending deltas server-wide before [`ServeError::Backpressure`].
    pub global_queue_cap: usize,
    /// Most live sessions before registration answers
    /// [`ServeError::AtCapacity`].
    pub max_sessions: usize,
    /// Where evicted sessions spill (`sess_<slot>_<generation>.snap`,
    /// the `afd save` frame format). Created on [`AfdServe::new`].
    pub spill_dir: PathBuf,
    /// Backend restored sessions run their shards on.
    pub backend: StreamBackend,
    /// Per-tick work bounds.
    pub budget: TickBudget,
}

impl ServeConfig {
    /// A config with serving defaults: 64 resident sessions, 64 pending
    /// deltas per session, 4096 server-wide, 1M session registry.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            resident_cap: 64,
            session_queue_cap: 64,
            global_queue_cap: 4096,
            max_sessions: 1 << 20,
            spill_dir: spill_dir.into(),
            backend: StreamBackend::InProcess,
            budget: TickBudget::default(),
        }
    }
}

/// What one [`AfdServe::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Deltas applied across all sessions this tick.
    pub deltas_applied: usize,
    /// Deltas that failed engine validation and were dropped (one
    /// tenant's bad delta never aborts the tick for the rest).
    pub deltas_failed: usize,
    /// Scheduler visits (a session drained twice counts twice).
    pub sessions_visited: usize,
    /// Cold sessions restored from spill this tick.
    pub restores: usize,
    /// Sessions evicted to spill this tick.
    pub evictions: usize,
    /// `true` when the tick stopped on a budget limit with work still
    /// queued — call [`AfdServe::tick`] again to continue.
    pub budget_exhausted: bool,
    /// Deltas still pending server-wide after the tick.
    pub remaining: usize,
}

/// A point-in-time census of the server — what the `afd serve` driver
/// prints and `record_serve` records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Live (addressable) sessions.
    pub sessions: usize,
    /// Sessions with a resident engine — always `<= resident_cap`.
    pub resident: usize,
    /// Deltas pending server-wide.
    pub pending: usize,
    /// Bytes of evicted sessions currently on disk.
    pub spill_bytes: u64,
    /// Ticks run.
    pub ticks: u64,
    /// Deltas applied over the server's lifetime.
    pub deltas_applied: u64,
    /// Deltas dropped by engine validation.
    pub deltas_failed: u64,
    /// Evictions over the server's lifetime.
    pub evictions: u64,
    /// Restores over the server's lifetime.
    pub restores: u64,
    /// Enqueues rejected at the per-session cap.
    pub rejected_session: u64,
    /// Enqueues rejected at the global cap.
    pub rejected_global: u64,
}

enum TenantState {
    /// Engine in memory; the tenant's stamp is a key in the LRU map.
    Resident(Box<AfdEngine>),
    /// Engine spilled to `sess_<slot>_<generation>.snap`.
    Evicted,
}

struct Tenant {
    state: TenantState,
    pending: VecDeque<RowDelta>,
    /// In the ready ring (has pending work the scheduler will visit).
    in_ready: bool,
    /// Last-touch logical stamp; the LRU key while resident.
    stamp: u64,
    /// Framed snapshot size on disk while evicted.
    spill_len: u64,
}

/// A long-lived multi-tenant session server in front of [`AfdEngine`].
///
/// Four pieces, matching the ROADMAP's serving-layer item:
///
/// * a **generational-slab registry** — sessions are named by stable
///   [`SessionHandle`]s over reused slots; stale handles are typed
///   errors, never aliased sessions;
/// * a **budget-based tick scheduler** — [`AfdServe::enqueue`] queues
///   deltas per session, [`AfdServe::tick`] drains a bounded
///   [`TickBudget`] across ready sessions round-robin;
/// * **admission control + backpressure** — per-session and global
///   queue caps answer [`ServeError::Backpressure`] *before* touching
///   any state, and the registry itself caps at
///   [`ServeConfig::max_sessions`];
/// * **cold-session eviction** — beyond [`ServeConfig::resident_cap`],
///   least-recently-touched sessions spill to disk as framed
///   [`SessionSnapshot`]s and restore transparently on next touch, so
///   resident memory stays bounded while every registered session
///   remains addressable. Restored scores are bit-identical (restore is
///   the `afd save`/`load` path).
///
/// Scheduling, eviction and accounting are all `O(log resident)` or
/// better per operation — nothing scans the registry.
pub struct AfdServe {
    cfg: ServeConfig,
    slab: Slab<Tenant>,
    /// Sessions with pending deltas, in scheduler order.
    ready: VecDeque<u32>,
    /// Resident sessions by last-touch stamp (oldest first) — the
    /// eviction order.
    lru: BTreeMap<u64, u32>,
    clock: u64,
    global_pending: usize,
    spill_bytes: u64,
    ticks: u64,
    deltas_applied: u64,
    deltas_failed: u64,
    evictions: u64,
    restores: u64,
    rejected_session: u64,
    rejected_global: u64,
}

impl AfdServe {
    /// Builds a server and creates its spill directory.
    ///
    /// # Errors
    /// [`ServeError::Config`] on any zero cap or budget;
    /// [`ServeError::Io`] when the spill directory cannot be created.
    pub fn new(cfg: ServeConfig) -> Result<Self, ServeError> {
        for (name, v) in [
            ("resident_cap", cfg.resident_cap),
            ("session_queue_cap", cfg.session_queue_cap),
            ("global_queue_cap", cfg.global_queue_cap),
            ("max_sessions", cfg.max_sessions),
            ("budget.max_deltas", cfg.budget.max_deltas),
            ("budget.session_burst", cfg.budget.session_burst),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be at least 1")));
            }
        }
        fs::create_dir_all(&cfg.spill_dir)?;
        Ok(AfdServe {
            cfg,
            slab: Slab::new(),
            ready: VecDeque::new(),
            lru: BTreeMap::new(),
            clock: 0,
            global_pending: 0,
            spill_bytes: 0,
            ticks: 0,
            deltas_applied: 0,
            deltas_failed: 0,
            evictions: 0,
            restores: 0,
            rejected_session: 0,
            rejected_global: 0,
        })
    }

    /// The configuration the server runs under.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Registers a live engine as a session. The engine starts resident;
    /// if that pushes residency past the cap, the least-recently-touched
    /// session (possibly an older one) spills.
    ///
    /// # Errors
    /// [`ServeError::AtCapacity`] at the registry cap; eviction spill
    /// errors as [`ServeError::Engine`] / [`ServeError::Io`].
    pub fn register(&mut self, engine: AfdEngine) -> Result<SessionHandle, ServeError> {
        self.admit()?;
        let h = self.slab.insert(Tenant {
            state: TenantState::Resident(Box::new(engine)),
            pending: VecDeque::new(),
            in_ready: false,
            stamp: 0,
            spill_len: 0,
        });
        self.touch(h.index());
        self.lru_insert(h.index());
        self.evict_to_cap()?;
        Ok(h)
    }

    /// Registers a session directly from a framed snapshot blob (the
    /// `afd save` format) **without building an engine**: the bytes are
    /// validated, written to spill, and the session starts evicted. This
    /// is the cheap path to a very large registry — registering 100k
    /// sessions costs 100k small file writes, not 100k engine builds.
    ///
    /// # Errors
    /// [`ServeError::AtCapacity`] at the registry cap;
    /// [`ServeError::Engine`] when the blob is not a valid snapshot
    /// frame; [`ServeError::Io`] when the spill write fails.
    pub fn register_snapshot(&mut self, bytes: &[u8]) -> Result<SessionHandle, ServeError> {
        self.admit()?;
        SessionSnapshot::from_bytes(bytes)?;
        let h = self.slab.insert(Tenant {
            state: TenantState::Evicted,
            pending: VecDeque::new(),
            in_ready: false,
            stamp: 0,
            spill_len: bytes.len() as u64,
        });
        self.touch(h.index());
        if let Err(e) = fs::write(self.spill_path(h), bytes) {
            self.slab.remove(h).expect("just inserted");
            return Err(ServeError::Io(e));
        }
        self.spill_bytes += bytes.len() as u64;
        Ok(h)
    }

    /// Queues a delta for the session; [`AfdServe::tick`] applies it.
    /// Returns the session's pending count after the enqueue.
    ///
    /// Caps are checked **before** anything changes: a
    /// [`ServeError::Backpressure`] rejection leaves the session's
    /// queue, engine and residency exactly as they were.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], [`ServeError::Backpressure`].
    pub fn enqueue(&mut self, h: SessionHandle, delta: RowDelta) -> Result<usize, ServeError> {
        let session_cap = self.cfg.session_queue_cap;
        let global_cap = self.cfg.global_queue_cap;
        let global_pending = self.global_pending;
        let tenant = self.slab.get_mut(h)?;
        if tenant.pending.len() >= session_cap {
            let pending = tenant.pending.len();
            self.rejected_session += 1;
            return Err(ServeError::Backpressure {
                scope: BackpressureScope::Session,
                cap: session_cap,
                pending,
            });
        }
        if global_pending >= global_cap {
            self.rejected_global += 1;
            return Err(ServeError::Backpressure {
                scope: BackpressureScope::Global,
                cap: global_cap,
                pending: global_pending,
            });
        }
        tenant.pending.push_back(delta);
        let pending = tenant.pending.len();
        if !tenant.in_ready {
            tenant.in_ready = true;
            self.ready.push_back(h.index());
        }
        self.global_pending += 1;
        Ok(pending)
    }

    /// Runs one scheduler tick: visits ready sessions round-robin,
    /// restores any that are cold, applies up to
    /// [`TickBudget::session_burst`] of each one's pending deltas, and
    /// stops at [`TickBudget::max_deltas`] / [`TickBudget::max_micros`].
    /// Residency is re-bounded to the cap before the tick returns.
    ///
    /// # Errors
    /// [`ServeError::Io`] / [`ServeError::Engine`] on spill or restore
    /// failure. Per-delta *validation* failures do not error the tick:
    /// the bad delta is dropped and counted in
    /// [`TickReport::deltas_failed`], isolating tenants from each other.
    pub fn tick(&mut self) -> Result<TickReport, ServeError> {
        let started = Instant::now();
        let budget = self.cfg.budget;
        let mut report = TickReport::default();
        let (restores0, evictions0) = (self.restores, self.evictions);
        self.ticks += 1;
        while report.deltas_applied < budget.max_deltas {
            if let Some(max_micros) = budget.max_micros {
                if started.elapsed().as_micros() >= u128::from(max_micros) {
                    report.budget_exhausted = true;
                    break;
                }
            }
            let Some(slot) = self.ready.pop_front() else {
                break;
            };
            // The slot may have been released since it was queued.
            if self.slab.at_mut(slot).is_none() {
                continue;
            }
            self.touch(slot);
            self.make_resident(slot)?;
            let burst = budget
                .session_burst
                .min(budget.max_deltas - report.deltas_applied);
            let tenant = self.slab.at_mut(slot).expect("checked above");
            let TenantState::Resident(engine) = &mut tenant.state else {
                unreachable!("made resident above");
            };
            let mut drained = 0usize;
            let mut applied = 0usize;
            let mut failed = 0usize;
            while drained < burst {
                let Some(delta) = tenant.pending.pop_front() else {
                    break;
                };
                drained += 1;
                match engine.delta(&DeltaRequest::new(delta)) {
                    Ok(_) => applied += 1,
                    Err(_) => failed += 1,
                }
            }
            if tenant.pending.is_empty() {
                tenant.in_ready = false;
            } else {
                self.ready.push_back(slot);
            }
            self.global_pending -= drained;
            self.deltas_applied += applied as u64;
            self.deltas_failed += failed as u64;
            report.deltas_applied += applied;
            report.deltas_failed += failed;
            report.sessions_visited += 1;
            self.evict_to_cap()?;
        }
        if report.deltas_applied >= budget.max_deltas && self.global_pending > 0 {
            report.budget_exhausted = true;
        }
        report.restores = (self.restores - restores0) as usize;
        report.evictions = (self.evictions - evictions0) as usize;
        report.remaining = self.global_pending;
        Ok(report)
    }

    /// Subscribes the session to a candidate FD, restoring it first if
    /// cold. Returns the candidate index (stable for this session).
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], restore errors, and engine
    /// validation as [`ServeError::Engine`].
    pub fn subscribe(&mut self, h: SessionHandle, fd: Fd) -> Result<usize, ServeError> {
        let slot = self.slab.slot_of(h)?;
        self.touch(slot);
        self.make_resident(slot)?;
        let tenant = self.slab.at_mut(slot).expect("validated");
        let TenantState::Resident(engine) = &mut tenant.state else {
            unreachable!("made resident above");
        };
        let resp = engine.subscribe(&SubscribeRequest::new(fd))?;
        self.evict_to_cap()?;
        Ok(resp.candidate)
    }

    /// The session's current scores for a subscribed candidate,
    /// restoring the session first if cold. Reads reflect *applied*
    /// deltas — queued ones are pending until a tick drains them.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], restore errors,
    /// [`ServeError::Engine`] for an unknown candidate.
    pub fn scores(
        &mut self,
        h: SessionHandle,
        candidate: usize,
    ) -> Result<StreamScores, ServeError> {
        let slot = self.slab.slot_of(h)?;
        self.touch(slot);
        self.make_resident(slot)?;
        let tenant = self.slab.at_mut(slot).expect("validated");
        let TenantState::Resident(engine) = &mut tenant.state else {
            unreachable!("made resident above");
        };
        let scores = engine.scores(candidate)?;
        self.evict_to_cap()?;
        Ok(scores)
    }

    /// Evicts the session to spill now (a no-op if already cold). The
    /// handle stays valid — next touch restores it.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], spill errors.
    pub fn evict(&mut self, h: SessionHandle) -> Result<(), ServeError> {
        let slot = self.slab.slot_of(h)?;
        let tenant = self.slab.at_mut(slot).expect("validated");
        if matches!(tenant.state, TenantState::Resident(_)) {
            self.lru.remove(&tenant.stamp);
            self.evict_slot(slot)?;
        }
        Ok(())
    }

    /// Releases the session: its queue is discarded, its spill file (if
    /// any) deleted, and the handle — every copy of it — goes stale.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`].
    pub fn release(&mut self, h: SessionHandle) -> Result<(), ServeError> {
        let slot = self.slab.slot_of(h)?;
        let path = self.spill_path(self.slab.handle_at(slot));
        let tenant = self.slab.remove(h).expect("validated");
        self.global_pending -= tenant.pending.len();
        match tenant.state {
            TenantState::Resident(engine) => {
                self.lru.remove(&tenant.stamp);
                // Graceful teardown; a straggler shard is the engine's
                // concern, not the registry's.
                let _ = engine.shutdown();
            }
            TenantState::Evicted => {
                self.spill_bytes -= tenant.spill_len;
                let _ = fs::remove_file(path);
            }
        }
        if tenant.in_ready {
            self.ready.retain(|&s| s != slot);
        }
        Ok(())
    }

    /// Whether the session currently has a resident engine.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`].
    pub fn is_resident(&self, h: SessionHandle) -> Result<bool, ServeError> {
        Ok(matches!(self.slab.get(h)?.state, TenantState::Resident(_)))
    }

    /// Deltas queued for the session.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`].
    pub fn pending(&self, h: SessionHandle) -> Result<usize, ServeError> {
        Ok(self.slab.get(h)?.pending.len())
    }

    /// Point-in-time census (sessions, residency, queues, lifetime
    /// counters).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            sessions: self.slab.len(),
            resident: self.lru.len(),
            pending: self.global_pending,
            spill_bytes: self.spill_bytes,
            ticks: self.ticks,
            deltas_applied: self.deltas_applied,
            deltas_failed: self.deltas_failed,
            evictions: self.evictions,
            restores: self.restores,
            rejected_session: self.rejected_session,
            rejected_global: self.rejected_global,
        }
    }

    fn admit(&self) -> Result<(), ServeError> {
        if self.slab.len() >= self.cfg.max_sessions {
            return Err(ServeError::AtCapacity {
                cap: self.cfg.max_sessions,
            });
        }
        Ok(())
    }

    fn spill_path(&self, h: SessionHandle) -> PathBuf {
        self.cfg
            .spill_dir
            .join(format!("sess_{}_{}.snap", h.index(), h.generation()))
    }

    /// Bumps the logical clock onto the slot's tenant, keeping the LRU
    /// key in sync when resident.
    fn touch(&mut self, slot: u32) {
        self.clock += 1;
        let clock = self.clock;
        let tenant = self.slab.at_mut(slot).expect("touch on a live slot");
        let resident = matches!(tenant.state, TenantState::Resident(_));
        let old = tenant.stamp;
        tenant.stamp = clock;
        if resident {
            self.lru.remove(&old);
            self.lru.insert(clock, slot);
        }
    }

    fn lru_insert(&mut self, slot: u32) {
        let stamp = self.slab.at_mut(slot).expect("live slot").stamp;
        self.lru.insert(stamp, slot);
    }

    /// Restores a cold session from its spill file. The caller must
    /// have touched the slot first, so the freshly restored session is
    /// the *newest* resident and [`AfdServe::evict_to_cap`] never
    /// immediately re-evicts it (resident_cap >= 1).
    fn make_resident(&mut self, slot: u32) -> Result<(), ServeError> {
        let h = self.slab.handle_at(slot);
        let tenant = self.slab.at_mut(slot).expect("live slot");
        if matches!(tenant.state, TenantState::Resident(_)) {
            return Ok(());
        }
        let path = self.spill_path(h);
        let bytes = fs::read(&path)?;
        let engine =
            AfdEngine::restore_with_backend(&RestoreRequest::new(bytes), self.cfg.backend.clone())?;
        let tenant = self.slab.at_mut(slot).expect("live slot");
        tenant.state = TenantState::Resident(Box::new(engine));
        self.spill_bytes -= tenant.spill_len;
        tenant.spill_len = 0;
        let _ = fs::remove_file(path);
        self.restores += 1;
        self.lru_insert(slot);
        self.evict_to_cap()
    }

    /// Spills least-recently-touched residents until the cap holds.
    fn evict_to_cap(&mut self) -> Result<(), ServeError> {
        while self.lru.len() > self.cfg.resident_cap {
            let (_, slot) = self.lru.pop_first().expect("len > cap >= 1");
            self.evict_slot(slot)?;
        }
        Ok(())
    }

    /// Spills one resident session (already removed from the LRU map).
    fn evict_slot(&mut self, slot: u32) -> Result<(), ServeError> {
        let h = self.slab.handle_at(slot);
        let path = self.spill_path(h);
        let tenant = self.slab.at_mut(slot).expect("live slot");
        let state = std::mem::replace(&mut tenant.state, TenantState::Evicted);
        let TenantState::Resident(mut engine) = state else {
            unreachable!("evict_slot on a cold slot");
        };
        let snap = match engine.save(&SnapshotRequest::default()) {
            Ok(snap) => snap,
            Err(e) => {
                // Failed to capture: the session stays resident (and
                // back in the LRU) rather than losing state.
                let tenant = self.slab.at_mut(slot).expect("live slot");
                tenant.state = TenantState::Resident(engine);
                self.lru_insert(slot);
                return Err(ServeError::Engine(e));
            }
        };
        if let Err(e) = fs::write(&path, &snap.bytes) {
            let tenant = self.slab.at_mut(slot).expect("live slot");
            tenant.state = TenantState::Resident(engine);
            self.lru_insert(slot);
            return Err(ServeError::Io(e));
        }
        let len = snap.bytes.len() as u64;
        let tenant = self.slab.at_mut(slot).expect("live slot");
        tenant.spill_len = len;
        self.spill_bytes += len;
        self.evictions += 1;
        let _ = (*engine).shutdown();
        Ok(())
    }
}

impl Drop for AfdServe {
    fn drop(&mut self) {
        // Spill files are working state, not exports: sweep the ones
        // this server wrote so repeated runs don't accumulate.
        let paths: Vec<PathBuf> = self.slab.handles().map(|h| self.spill_path(h)).collect();
        for path in paths {
            let _ = fs::remove_file(path);
        }
    }
}
