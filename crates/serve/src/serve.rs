//! The multi-tenant session server: budgeted tick scheduler, admission
//! control, cold-session eviction and crash-safe persistence over the
//! slab registry.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use afd_engine::{
    AfdEngine, AfdError, DeltaRequest, RestoreRequest, SnapshotRequest, StreamBackend,
    SubscribeRequest,
};
use afd_relation::Fd;
use afd_stream::{RowDelta, SessionSnapshot, StreamScores};
use afd_wire::{CheckpointEntry, ManifestCheckpoint, ManifestOp, SlotStatus};

use crate::error::{BackpressureScope, ServeError};
use crate::journal::{replay, DurabilityConfig, Journal, ReplayState, JOURNAL_FILE};
use crate::persist::{is_disk_full, CrashPlan, Persister};
use crate::registry::{SessionHandle, Slab};

/// Per-tick work bounds. A tick stops at whichever limit it hits first,
/// so one call to [`AfdServe::tick`] can never run away regardless of
/// how much is queued.
#[derive(Debug, Clone, Copy)]
pub struct TickBudget {
    /// Most deltas applied per tick, across all sessions.
    pub max_deltas: usize,
    /// Most deltas applied per session per scheduler visit — the
    /// fairness knob. A session with more pending goes back to the end
    /// of the ready ring, so a hot tenant advances the ring, not blocks
    /// it.
    pub session_burst: usize,
    /// Optional wall-clock budget in microseconds, checked between
    /// session visits (restore cost counts against it).
    pub max_micros: Option<u64>,
}

impl Default for TickBudget {
    fn default() -> Self {
        TickBudget {
            max_deltas: 256,
            session_burst: 32,
            max_micros: None,
        }
    }
}

/// Server-wide knobs. Built with [`ServeConfig::new`] (the spill
/// directory is the one mandatory choice), then adjusted field-wise.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most sessions resident (engine in memory) at once; the LRU rest
    /// live as framed snapshots in `spill_dir`. At least 1.
    pub resident_cap: usize,
    /// Most pending deltas per session before [`ServeError::Backpressure`].
    pub session_queue_cap: usize,
    /// Most pending deltas server-wide before [`ServeError::Backpressure`].
    pub global_queue_cap: usize,
    /// Most live sessions before registration answers
    /// [`ServeError::AtCapacity`].
    pub max_sessions: usize,
    /// Where evicted sessions spill (`sess_<slot>_<generation>.snap`,
    /// the `afd save` frame format) and where the registry journal
    /// (`registry.afdj`) lives. Created on [`AfdServe::new`].
    pub spill_dir: PathBuf,
    /// Backend restored sessions run their shards on.
    pub backend: StreamBackend,
    /// Per-tick work bounds.
    pub budget: TickBudget,
    /// How aggressively registry transitions are made durable. Default
    /// is fully durable (journal on, fsync every append); use
    /// [`DurabilityConfig::ephemeral`] for throwaway servers.
    pub durability: DurabilityConfig,
    /// Deterministic crash injection for tests: when set, the seeded
    /// plan kills/tears/garbles one persistence operation and every
    /// subsequent disk touch fails with the hidden injected-crash
    /// error. Production configs leave this `None`.
    pub crash_plan: Option<CrashPlan>,
}

impl ServeConfig {
    /// A config with serving defaults: 64 resident sessions, 64 pending
    /// deltas per session, 4096 server-wide, 1M session registry, fully
    /// durable registry journal.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            resident_cap: 64,
            session_queue_cap: 64,
            global_queue_cap: 4096,
            max_sessions: 1 << 20,
            spill_dir: spill_dir.into(),
            backend: StreamBackend::InProcess,
            budget: TickBudget::default(),
            durability: DurabilityConfig::default(),
            crash_plan: None,
        }
    }
}

/// What one [`AfdServe::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Deltas applied across all sessions this tick.
    pub deltas_applied: usize,
    /// Deltas that failed engine validation and were dropped (one
    /// tenant's bad delta never aborts the tick for the rest).
    pub deltas_failed: usize,
    /// Scheduler visits (a session drained twice counts twice).
    pub sessions_visited: usize,
    /// Cold sessions restored from spill this tick.
    pub restores: usize,
    /// Sessions evicted to spill this tick.
    pub evictions: usize,
    /// Restore attempts that failed this tick (corrupt spill or
    /// transient I/O). A corrupt session's queue is dropped and counted
    /// in [`TickReport::deltas_failed`]; transient failures keep their
    /// queues and retry next tick. Either way the tick kept serving the
    /// other tenants.
    pub restore_failed: usize,
    /// `true` when an eviction hit a full disk (`ENOSPC`) this tick:
    /// the victim stayed resident (over cap, state preserved) instead
    /// of being dropped. Free disk or release sessions to drain.
    pub spill_backpressure: bool,
    /// `true` when the tick stopped on a budget limit with work still
    /// queued — call [`AfdServe::tick`] again to continue.
    pub budget_exhausted: bool,
    /// Deltas still pending server-wide after the tick.
    pub remaining: usize,
}

/// A point-in-time census of the server — what the `afd serve` driver
/// prints and `record_serve` records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Live (addressable) sessions.
    pub sessions: usize,
    /// Sessions with a resident engine — always `<= resident_cap`
    /// (except transiently under disk-full backpressure).
    pub resident: usize,
    /// Deltas pending server-wide.
    pub pending: usize,
    /// Bytes of evicted sessions currently on disk.
    pub spill_bytes: u64,
    /// Ticks run.
    pub ticks: u64,
    /// Deltas applied over the server's lifetime.
    pub deltas_applied: u64,
    /// Deltas dropped by engine validation.
    pub deltas_failed: u64,
    /// Evictions over the server's lifetime.
    pub evictions: u64,
    /// Restores over the server's lifetime.
    pub restores: u64,
    /// Enqueues rejected at the per-session cap.
    pub rejected_session: u64,
    /// Enqueues rejected at the global cap.
    pub rejected_global: u64,
    /// Spill-file deletions (release / restore cleanup) that failed and
    /// left a stale file behind — surfaced, never silently ignored.
    /// Stale files are quarantined by the next recovery.
    pub spill_remove_failed: u64,
    /// Restore attempts that failed over the server's lifetime.
    pub restore_failed: u64,
    /// Registry-journal records appended over the server's lifetime.
    pub journal_appends: u64,
    /// Journal compactions (checkpoint rewrites) over the lifetime.
    pub journal_compactions: u64,
    /// Front-door connections admitted (0 unless a socket front door is
    /// serving — the library API never touches these three).
    pub connections_accepted: u64,
    /// Front-door connections refused at the connection cap.
    pub connections_rejected: u64,
    /// Admitted connections that ended while still holding registered
    /// handles, forcing the disconnect policy to release or park them.
    pub connections_dropped: u64,
}

/// Why a file was moved to `spill_dir/quarantine/` during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The spill file failed frame/snapshot validation (torn write or
    /// bit rot).
    CorruptFrame,
    /// The spill file is well-formed but its size disagrees with what
    /// the journal recorded for that slot + generation.
    LengthMismatch,
    /// A `sess_*.snap` file no journal record accounts for (e.g. its
    /// registration record never became durable).
    Orphaned,
    /// A `*.tmp` staging file from an atomic write that never renamed.
    TempFile,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuarantineReason::CorruptFrame => "corrupt frame",
            QuarantineReason::LengthMismatch => "length mismatch",
            QuarantineReason::Orphaned => "orphaned",
            QuarantineReason::TempFile => "temp file",
        })
    }
}

/// One file recovery moved aside instead of deleting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Where the file now lives (inside `spill_dir/quarantine/`).
    pub file: PathBuf,
    /// Why it could not be adopted.
    pub reason: QuarantineReason,
}

/// What [`AfdServe::recover`] found and rebuilt. Every session the
/// journal knew about is accounted for — recovered or counted lost —
/// and every unusable file is enumerated, never silently deleted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverReport {
    /// Sessions rebuilt into the registry (all starting cold).
    pub sessions_recovered: usize,
    /// Sessions the journal recorded but whose state was not durable at
    /// the crash (resident with no spill file, or a corrupt one). Their
    /// slots' generations are bumped so old handles answer
    /// [`ServeError::StaleHandle`], never alias a future tenant.
    pub sessions_lost: usize,
    /// Well-formed journal records replayed.
    pub journal_records: usize,
    /// Unreadable journal tail bytes discarded (a torn final append).
    pub journal_truncated_bytes: u64,
    /// Files moved to `spill_dir/quarantine/`, with reasons.
    pub quarantined: Vec<Quarantined>,
    /// Spill bytes adopted for recovered sessions.
    pub spill_bytes: u64,
}

impl std::fmt::Display for RecoverReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered {} sessions ({} lost, {} quarantined) from {} journal records \
             ({} truncated bytes), {} spill bytes adopted",
            self.sessions_recovered,
            self.sessions_lost,
            self.quarantined.len(),
            self.journal_records,
            self.journal_truncated_bytes,
            self.spill_bytes,
        )
    }
}

enum TenantState {
    /// Engine in memory; the tenant's stamp is a key in the LRU map.
    Resident(Box<AfdEngine>),
    /// Engine spilled to `sess_<slot>_<generation>.snap`.
    Evicted,
}

struct Tenant {
    state: TenantState,
    pending: VecDeque<RowDelta>,
    /// In the ready ring (has pending work the scheduler will visit).
    in_ready: bool,
    /// Last-touch logical stamp; the LRU key while resident.
    stamp: u64,
    /// Framed snapshot size on disk while evicted.
    spill_len: u64,
}

impl Tenant {
    fn cold(spill_len: u64) -> Self {
        Tenant {
            state: TenantState::Evicted,
            pending: VecDeque::new(),
            in_ready: false,
            stamp: 0,
            spill_len,
        }
    }
}

/// A long-lived multi-tenant session server in front of [`AfdEngine`].
///
/// Five pieces, matching the ROADMAP's serving-layer item:
///
/// * a **generational-slab registry** — sessions are named by stable
///   [`SessionHandle`]s over reused slots; stale handles are typed
///   errors, never aliased sessions;
/// * a **budget-based tick scheduler** — [`AfdServe::enqueue`] queues
///   deltas per session, [`AfdServe::tick`] drains a bounded
///   [`TickBudget`] across ready sessions round-robin;
/// * **admission control + backpressure** — per-session and global
///   queue caps answer [`ServeError::Backpressure`] *before* touching
///   any state, and the registry itself caps at
///   [`ServeConfig::max_sessions`];
/// * **cold-session eviction** — beyond [`ServeConfig::resident_cap`],
///   least-recently-touched sessions spill to disk as framed
///   [`SessionSnapshot`]s and restore transparently on next touch, so
///   resident memory stays bounded while every registered session
///   remains addressable. Restored scores are bit-identical (restore is
///   the `afd save`/`load` path);
/// * **crash safety** — every registry transition is journaled
///   (persist-first, then mutate), every spill write is atomic
///   (tmp → fsync → rename), and [`AfdServe::recover`] rebuilds the
///   registry from `spill_dir` after a crash, quarantining anything it
///   cannot trust. See the crate docs for the exact durability
///   contract.
///
/// Scheduling, eviction and accounting are all `O(log resident)` or
/// better per operation — nothing scans the registry.
pub struct AfdServe {
    cfg: ServeConfig,
    slab: Slab<Tenant>,
    /// Sessions with pending deltas, in scheduler order.
    ready: VecDeque<u32>,
    /// Resident sessions by last-touch stamp (oldest first) — the
    /// eviction order.
    lru: BTreeMap<u64, u32>,
    persister: Persister,
    journal: Option<Journal>,
    clock: u64,
    global_pending: usize,
    spill_bytes: u64,
    ticks: u64,
    deltas_applied: u64,
    deltas_failed: u64,
    evictions: u64,
    restores: u64,
    rejected_session: u64,
    rejected_global: u64,
    spill_remove_failed: u64,
    restore_failed: u64,
    journal_appends: u64,
    journal_compactions: u64,
}

impl AfdServe {
    /// Builds a server and creates its spill directory. With durable
    /// (default) durability this also creates the registry journal —
    /// and refuses a directory that already holds one, because an
    /// existing journal is durable state only [`AfdServe::recover`] may
    /// adopt.
    ///
    /// # Errors
    /// [`ServeError::Config`] on any zero cap or budget, or on a
    /// pre-existing journal; [`ServeError::Io`] when the spill
    /// directory cannot be created.
    pub fn new(cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::validate(&cfg)?;
        fs::create_dir_all(&cfg.spill_dir)?;
        let journal = if cfg.durability.journal {
            Some(Journal::create(&cfg.spill_dir, cfg.durability)?)
        } else {
            None
        };
        Ok(Self::empty(cfg, journal))
    }

    fn validate(cfg: &ServeConfig) -> Result<(), ServeError> {
        for (name, v) in [
            ("resident_cap", cfg.resident_cap),
            ("session_queue_cap", cfg.session_queue_cap),
            ("global_queue_cap", cfg.global_queue_cap),
            ("max_sessions", cfg.max_sessions),
            ("budget.max_deltas", cfg.budget.max_deltas),
            ("budget.session_burst", cfg.budget.session_burst),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be at least 1")));
            }
        }
        cfg.durability.validate()
    }

    fn empty(cfg: ServeConfig, journal: Option<Journal>) -> Self {
        let persister = Persister::new(cfg.crash_plan);
        AfdServe {
            cfg,
            slab: Slab::new(),
            ready: VecDeque::new(),
            lru: BTreeMap::new(),
            persister,
            journal,
            clock: 0,
            global_pending: 0,
            spill_bytes: 0,
            ticks: 0,
            deltas_applied: 0,
            deltas_failed: 0,
            evictions: 0,
            restores: 0,
            rejected_session: 0,
            rejected_global: 0,
            spill_remove_failed: 0,
            restore_failed: 0,
            journal_appends: 0,
            journal_compactions: 0,
        }
    }

    /// Rebuilds a server from a crashed (or cleanly stopped) durable
    /// `spill_dir`: replays the registry journal, validates every spill
    /// file against it, adopts what is trustworthy and quarantines the
    /// rest into `spill_dir/quarantine/`.
    ///
    /// * Journal-**spilled** sessions whose file validates (frame
    ///   checksum + recorded length) are recovered, starting cold.
    /// * Journal-**resident** sessions died with their state in RAM;
    ///   they are recovered only if a still-valid spill file for their
    ///   exact slot + generation survives (an eviction that hit disk
    ///   but whose journal record didn't), otherwise counted lost.
    /// * Lost slots get their generation bumped, so pre-crash handles
    ///   go stale instead of aliasing.
    /// * Corrupt, mis-sized, orphaned and `*.tmp` files are *moved*,
    ///   never deleted, and enumerated in the [`RecoverReport`].
    ///
    /// On success the journal is rewritten as one compacted checkpoint
    /// of the rebuilt registry. A directory with no journal at all
    /// recovers to an empty server (fresh start).
    ///
    /// # Errors
    /// [`ServeError::Config`] when `cfg.durability.journal` is off (an
    /// ephemeral server has nothing to recover); [`ServeError::Io`] on
    /// unreadable directory state. Corruption is never an error here —
    /// it is a counted, quarantined outcome.
    pub fn recover(cfg: ServeConfig) -> Result<(Self, RecoverReport), ServeError> {
        Self::validate(&cfg)?;
        if !cfg.durability.journal {
            return Err(ServeError::Config(
                "recover needs a durable config (DurabilityConfig::journal = true)".into(),
            ));
        }
        fs::create_dir_all(&cfg.spill_dir)?;
        let mut report = RecoverReport::default();

        let Some(load) = Journal::load(&cfg.spill_dir)? else {
            // Nothing durable yet: a fresh start, not an error.
            let journal = Journal::create(&cfg.spill_dir, cfg.durability)?;
            return Ok((Self::empty(cfg, Some(journal)), report));
        };
        report.journal_records = load.records;
        report.journal_truncated_bytes = load.truncated_bytes;
        let (slots, next_seq) = replay(&load.events);

        // Inventory the directory: spill files by (slot, generation),
        // strays straight to quarantine.
        let mut files: BTreeMap<(u32, u32), (PathBuf, u64)> = BTreeMap::new();
        for entry in fs::read_dir(&cfg.spill_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == JOURNAL_FILE {
                continue;
            }
            if name.ends_with(".tmp") {
                quarantine(
                    &cfg.spill_dir,
                    &path,
                    QuarantineReason::TempFile,
                    &mut report,
                )?;
                continue;
            }
            // Unparseable names are not ours (user files share the dir
            // at their peril, but we never touch what we can't name).
            if let Some(key) = parse_spill_name(&name) {
                let len = entry.metadata()?.len();
                files.insert(key, (path, len));
            }
        }

        // Adopt or lose each journaled slot.
        let max_slot = slots.keys().next_back().map_or(0, |s| s + 1);
        let mut entries: Vec<(u32, Option<Tenant>)> = (0..max_slot).map(|_| (0, None)).collect();
        for (slot, rs) in &slots {
            let slot = *slot;
            match rs.state {
                ReplayState::Free => entries[slot as usize] = (rs.generation, None),
                ReplayState::Spilled { len } => match files.remove(&(slot, rs.generation)) {
                    Some((path, flen)) => {
                        let reason = if flen != len {
                            Some(QuarantineReason::LengthMismatch)
                        } else if !spill_file_valid(&path) {
                            Some(QuarantineReason::CorruptFrame)
                        } else {
                            None
                        };
                        match reason {
                            None => {
                                report.sessions_recovered += 1;
                                report.spill_bytes += len;
                                entries[slot as usize] = (rs.generation, Some(Tenant::cold(len)));
                            }
                            Some(reason) => {
                                quarantine(&cfg.spill_dir, &path, reason, &mut report)?;
                                report.sessions_lost += 1;
                                entries[slot as usize] = (rs.generation.wrapping_add(1), None);
                            }
                        }
                    }
                    None => {
                        report.sessions_lost += 1;
                        entries[slot as usize] = (rs.generation.wrapping_add(1), None);
                    }
                },
                ReplayState::Resident => {
                    // Died with state in RAM. A valid spill file for
                    // this exact slot + generation is a fully-synced
                    // eviction whose journal record didn't land — adopt
                    // it rather than declare loss.
                    match files.remove(&(slot, rs.generation)) {
                        Some((path, flen)) if spill_file_valid(&path) => {
                            report.sessions_recovered += 1;
                            report.spill_bytes += flen;
                            entries[slot as usize] = (rs.generation, Some(Tenant::cold(flen)));
                        }
                        Some((path, _)) => {
                            quarantine(
                                &cfg.spill_dir,
                                &path,
                                QuarantineReason::CorruptFrame,
                                &mut report,
                            )?;
                            report.sessions_lost += 1;
                            entries[slot as usize] = (rs.generation.wrapping_add(1), None);
                        }
                        None => {
                            report.sessions_lost += 1;
                            entries[slot as usize] = (rs.generation.wrapping_add(1), None);
                        }
                    }
                }
            }
        }

        // Whatever spill files remain match no journaled slot.
        for (_, (path, _)) in files {
            quarantine(
                &cfg.spill_dir,
                &path,
                QuarantineReason::Orphaned,
                &mut report,
            )?;
        }

        let slab = Slab::restore_slots(entries);
        let spill_bytes = report.spill_bytes;
        let mut server = Self::empty(cfg, None);
        server.slab = slab;
        server.spill_bytes = spill_bytes;

        // Seal what we rebuilt: one compacted checkpoint, atomically.
        let mut cp = server.manifest_checkpoint();
        cp.next_seq = next_seq;
        let journal = Journal::rewrite(
            &server.cfg.spill_dir,
            &cp,
            server.cfg.durability,
            &mut server.persister,
        )?;
        server.journal = Some(journal);
        Ok((server, report))
    }

    /// The configuration the server runs under.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Handles of every live session, in slot order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionHandle> {
        self.slab.handles().collect()
    }

    /// Flushes the whole server to durable state: evicts every resident
    /// session (each spill is atomic + journaled), fsyncs the journal
    /// and compacts it to one checkpoint. After this returns, a crash —
    /// or a clean shutdown — loses nothing: [`AfdServe::recover`]
    /// rebuilds every session. Returns how many sessions were evicted.
    ///
    /// Queued (un-ticked) deltas are volatile by contract and are not
    /// flushed; tick before checkpointing if they matter.
    ///
    /// # Errors
    /// Spill/journal errors; typed [`BackpressureScope::Disk`]
    /// backpressure on a full disk (state intact, retryable).
    pub fn checkpoint(&mut self) -> Result<usize, ServeError> {
        let evictions0 = self.evictions;
        self.evict_down_to(0)?;
        if let Some(j) = self.journal.as_mut() {
            j.sync_now(&mut self.persister)?;
        }
        self.compact_now()?;
        Ok((self.evictions - evictions0) as usize)
    }

    /// Registers a live engine as a session. The engine starts resident;
    /// if residency is at cap, the least-recently-touched session spills
    /// *first* (persist before mutate — a spill failure leaves the
    /// registry unchanged).
    ///
    /// # Errors
    /// [`ServeError::AtCapacity`] at the registry cap; eviction spill
    /// errors as [`ServeError::Engine`] / [`ServeError::Io`] /
    /// disk-full [`ServeError::Backpressure`].
    pub fn register(&mut self, engine: AfdEngine) -> Result<SessionHandle, ServeError> {
        self.admit()?;
        if self.lru.len() >= self.cfg.resident_cap {
            self.evict_down_to(self.cfg.resident_cap - 1)?;
        }
        let h = self.slab.peek_next();
        self.journal_append(ManifestOp::Register, h.index(), h.generation(), 0)?;
        let issued = self.slab.insert(Tenant {
            state: TenantState::Resident(Box::new(engine)),
            pending: VecDeque::new(),
            in_ready: false,
            stamp: 0,
            spill_len: 0,
        });
        debug_assert_eq!(issued, h);
        self.touch(h.index());
        self.lru_insert(h.index());
        self.maybe_compact()?;
        Ok(h)
    }

    /// Registers a session directly from a framed snapshot blob (the
    /// `afd save` format) **without building an engine**: the bytes are
    /// validated, persisted atomically, journaled, and only then does
    /// the registry change — a failure at any step leaves no trace. The
    /// session starts evicted. This is the cheap path to a very large
    /// registry — registering 100k sessions costs 100k small file
    /// writes, not 100k engine builds.
    ///
    /// # Errors
    /// [`ServeError::AtCapacity`] at the registry cap;
    /// [`ServeError::Engine`] when the blob is not a valid snapshot
    /// frame; [`ServeError::Io`] / disk-full
    /// [`ServeError::Backpressure`] when persistence fails.
    pub fn register_snapshot(&mut self, bytes: &[u8]) -> Result<SessionHandle, ServeError> {
        self.admit()?;
        SessionSnapshot::from_bytes(bytes)?;
        let h = self.slab.peek_next();
        let path = self.spill_path(h);
        self.persister
            .write_atomic(&path, bytes)
            .map_err(|e| self.as_disk_backpressure(e))?;
        if let Err(e) = self.journal_append(
            ManifestOp::RegisterSnapshot,
            h.index(),
            h.generation(),
            bytes.len() as u64,
        ) {
            // Unwind the file so the failed admission leaves no trace
            // (unless the simulated process just died — then recovery
            // will quarantine it as orphaned, which is the point).
            if !matches!(e, ServeError::InjectedCrash(_)) && fs::remove_file(&path).is_err() {
                self.spill_remove_failed += 1;
            }
            return Err(e);
        }
        let issued = self.slab.insert(Tenant::cold(bytes.len() as u64));
        debug_assert_eq!(issued, h);
        self.touch(h.index());
        self.spill_bytes += bytes.len() as u64;
        self.maybe_compact()?;
        Ok(h)
    }

    /// Queues a delta for the session; [`AfdServe::tick`] applies it.
    /// Returns the session's pending count after the enqueue.
    ///
    /// Caps are checked **before** anything changes: a
    /// [`ServeError::Backpressure`] rejection leaves the session's
    /// queue, engine and residency exactly as they were. Queued deltas
    /// are volatile — they are applied state only after a tick, and
    /// durable state only after the session next spills.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], [`ServeError::Backpressure`].
    pub fn enqueue(&mut self, h: SessionHandle, delta: RowDelta) -> Result<usize, ServeError> {
        let session_cap = self.cfg.session_queue_cap;
        let global_cap = self.cfg.global_queue_cap;
        let global_pending = self.global_pending;
        let tenant = self.slab.get_mut(h)?;
        if tenant.pending.len() >= session_cap {
            let pending = tenant.pending.len();
            self.rejected_session += 1;
            return Err(ServeError::Backpressure {
                scope: BackpressureScope::Session,
                cap: session_cap,
                pending,
            });
        }
        if global_pending >= global_cap {
            self.rejected_global += 1;
            return Err(ServeError::Backpressure {
                scope: BackpressureScope::Global,
                cap: global_cap,
                pending: global_pending,
            });
        }
        tenant.pending.push_back(delta);
        let pending = tenant.pending.len();
        if !tenant.in_ready {
            tenant.in_ready = true;
            self.ready.push_back(h.index());
        }
        self.global_pending += 1;
        Ok(pending)
    }

    /// Runs one scheduler tick: visits ready sessions round-robin,
    /// restores any that are cold, applies up to
    /// [`TickBudget::session_burst`] of each one's pending deltas, and
    /// stops at [`TickBudget::max_deltas`] / [`TickBudget::max_micros`].
    /// Residency is re-bounded to the cap before the tick returns.
    ///
    /// Per-tenant failures never abort the tick: a delta that fails
    /// engine validation is dropped and counted; a session whose spill
    /// file is corrupt has its queue dropped and counted
    /// ([`TickReport::restore_failed`]) while its handle keeps
    /// answering [`ServeError::CorruptSpill`]; a transient restore
    /// failure parks the session for retry next tick; a full disk
    /// degrades eviction to [`TickReport::spill_backpressure`]. The
    /// tick itself errors only on server-level faults.
    ///
    /// # Errors
    /// [`ServeError::Io`] / [`ServeError::Engine`] on server-level
    /// spill failure.
    pub fn tick(&mut self) -> Result<TickReport, ServeError> {
        let started = Instant::now();
        let budget = self.cfg.budget;
        let mut report = TickReport::default();
        let (restores0, evictions0) = (self.restores, self.evictions);
        let mut retry_next_tick: Vec<u32> = Vec::new();
        self.ticks += 1;
        while report.deltas_applied < budget.max_deltas {
            if let Some(max_micros) = budget.max_micros {
                if started.elapsed().as_micros() >= u128::from(max_micros) {
                    report.budget_exhausted = true;
                    break;
                }
            }
            let Some(slot) = self.ready.pop_front() else {
                break;
            };
            // The slot may have been released since it was queued.
            if self.slab.at_mut(slot).is_none() {
                continue;
            }
            self.touch(slot);
            if let Err(e) = self.make_resident(slot) {
                self.restore_failed += 1;
                report.restore_failed += 1;
                match e {
                    ServeError::CorruptSpill { .. } => {
                        // This tenant is poisoned until released; its
                        // queue can never apply. Drop it — counted —
                        // and keep serving everyone else.
                        let tenant = self.slab.at_mut(slot).expect("checked above");
                        let dropped = tenant.pending.len();
                        tenant.pending.clear();
                        tenant.in_ready = false;
                        self.global_pending -= dropped;
                        self.deltas_failed += dropped as u64;
                        report.deltas_failed += dropped;
                        continue;
                    }
                    e @ ServeError::InjectedCrash(_) => return Err(e),
                    _ => {
                        // Transient (I/O, disk pressure): keep the
                        // queue, park the session until next tick.
                        retry_next_tick.push(slot);
                        continue;
                    }
                }
            }
            let burst = budget
                .session_burst
                .min(budget.max_deltas - report.deltas_applied);
            let tenant = self.slab.at_mut(slot).expect("checked above");
            let TenantState::Resident(engine) = &mut tenant.state else {
                unreachable!("made resident above");
            };
            let mut drained = 0usize;
            let mut applied = 0usize;
            let mut failed = 0usize;
            while drained < burst {
                let Some(delta) = tenant.pending.pop_front() else {
                    break;
                };
                drained += 1;
                match engine.delta(&DeltaRequest::new(delta)) {
                    Ok(_) => applied += 1,
                    Err(_) => failed += 1,
                }
            }
            if tenant.pending.is_empty() {
                tenant.in_ready = false;
            } else {
                self.ready.push_back(slot);
            }
            self.global_pending -= drained;
            self.deltas_applied += applied as u64;
            self.deltas_failed += failed as u64;
            report.deltas_applied += applied;
            report.deltas_failed += failed;
            report.sessions_visited += 1;
            match self.evict_to_cap() {
                Ok(()) => {}
                Err(ServeError::Backpressure {
                    scope: BackpressureScope::Disk,
                    ..
                }) => report.spill_backpressure = true,
                Err(e) => return Err(e),
            }
        }
        // Parked sessions stay in the ring (still in_ready) so the next
        // tick retries their restore.
        self.ready.extend(retry_next_tick);
        if report.deltas_applied >= budget.max_deltas && self.global_pending > 0 {
            report.budget_exhausted = true;
        }
        report.restores = (self.restores - restores0) as usize;
        report.evictions = (self.evictions - evictions0) as usize;
        report.remaining = self.global_pending;
        self.maybe_compact()?;
        Ok(report)
    }

    /// Subscribes the session to a candidate FD, restoring it first if
    /// cold. Returns the candidate index (stable for this session).
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], restore errors (a corrupt spill
    /// file is a typed [`ServeError::CorruptSpill`]), and engine
    /// validation as [`ServeError::Engine`].
    pub fn subscribe(&mut self, h: SessionHandle, fd: Fd) -> Result<usize, ServeError> {
        let slot = self.slab.slot_of(h)?;
        self.touch(slot);
        self.make_resident(slot)?;
        let tenant = self.slab.at_mut(slot).expect("validated");
        let TenantState::Resident(engine) = &mut tenant.state else {
            unreachable!("made resident above");
        };
        let resp = engine.subscribe(&SubscribeRequest::new(fd))?;
        self.evict_to_cap()?;
        Ok(resp.candidate)
    }

    /// The session's current scores for a subscribed candidate,
    /// restoring the session first if cold. Reads reflect *applied*
    /// deltas — queued ones are pending until a tick drains them.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], restore errors (a corrupt spill
    /// file is a typed [`ServeError::CorruptSpill`]),
    /// [`ServeError::Engine`] for an unknown candidate.
    pub fn scores(
        &mut self,
        h: SessionHandle,
        candidate: usize,
    ) -> Result<StreamScores, ServeError> {
        let slot = self.slab.slot_of(h)?;
        self.touch(slot);
        self.make_resident(slot)?;
        let tenant = self.slab.at_mut(slot).expect("validated");
        let TenantState::Resident(engine) = &mut tenant.state else {
            unreachable!("made resident above");
        };
        let scores = engine.scores(candidate)?;
        self.evict_to_cap()?;
        Ok(scores)
    }

    /// Evicts the session to spill now (a no-op if already cold). The
    /// handle stays valid — next touch restores it.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`], spill errors (disk-full as typed
    /// [`ServeError::Backpressure`]; the session stays resident).
    pub fn evict(&mut self, h: SessionHandle) -> Result<(), ServeError> {
        let slot = self.slab.slot_of(h)?;
        let tenant = self.slab.at_mut(slot).expect("validated");
        if matches!(tenant.state, TenantState::Resident(_)) {
            self.lru.remove(&tenant.stamp);
            self.evict_slot(slot)?;
            self.maybe_compact()?;
        }
        Ok(())
    }

    /// Releases the session: the release is journaled, then its queue
    /// is discarded, its spill file (if any) deleted, and the handle —
    /// every copy of it — goes stale.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`]; journal append failure (the session
    /// is untouched).
    pub fn release(&mut self, h: SessionHandle) -> Result<(), ServeError> {
        let slot = self.slab.slot_of(h)?;
        self.journal_append(ManifestOp::Release, slot, h.generation(), 0)?;
        let path = self.spill_path(self.slab.handle_at(slot));
        let tenant = self.slab.remove(h).expect("validated");
        self.global_pending -= tenant.pending.len();
        match tenant.state {
            TenantState::Resident(engine) => {
                self.lru.remove(&tenant.stamp);
                // Graceful teardown; a straggler shard is the engine's
                // concern, not the registry's.
                let _ = engine.shutdown();
            }
            TenantState::Evicted => {
                self.spill_bytes -= tenant.spill_len;
                self.remove_spill(&path)?;
            }
        }
        if tenant.in_ready {
            self.ready.retain(|&s| s != slot);
        }
        self.maybe_compact()?;
        Ok(())
    }

    /// Whether the session currently has a resident engine.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`].
    pub fn is_resident(&self, h: SessionHandle) -> Result<bool, ServeError> {
        Ok(matches!(self.slab.get(h)?.state, TenantState::Resident(_)))
    }

    /// Deltas queued for the session.
    ///
    /// # Errors
    /// [`ServeError::StaleHandle`].
    pub fn pending(&self, h: SessionHandle) -> Result<usize, ServeError> {
        Ok(self.slab.get(h)?.pending.len())
    }

    /// Point-in-time census (sessions, residency, queues, lifetime
    /// counters).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            sessions: self.slab.len(),
            resident: self.lru.len(),
            pending: self.global_pending,
            spill_bytes: self.spill_bytes,
            ticks: self.ticks,
            deltas_applied: self.deltas_applied,
            deltas_failed: self.deltas_failed,
            evictions: self.evictions,
            restores: self.restores,
            rejected_session: self.rejected_session,
            rejected_global: self.rejected_global,
            spill_remove_failed: self.spill_remove_failed,
            restore_failed: self.restore_failed,
            journal_appends: self.journal_appends,
            journal_compactions: self.journal_compactions,
            // The library object never sees connections; the socket
            // front door overlays these before answering a census.
            connections_accepted: 0,
            connections_rejected: 0,
            connections_dropped: 0,
        }
    }

    /// Test hook: simulate a full spill device (`ENOSPC` on every
    /// write) without filling a real disk.
    #[doc(hidden)]
    pub fn debug_set_disk_full(&mut self, full: bool) {
        self.persister.set_disk_full(full);
    }

    fn admit(&self) -> Result<(), ServeError> {
        if self.slab.len() >= self.cfg.max_sessions {
            return Err(ServeError::AtCapacity {
                cap: self.cfg.max_sessions,
            });
        }
        Ok(())
    }

    fn spill_path(&self, h: SessionHandle) -> PathBuf {
        self.cfg
            .spill_dir
            .join(format!("sess_{}_{}.snap", h.index(), h.generation()))
    }

    /// Append one transition to the journal (a no-op when ephemeral).
    fn journal_append(
        &mut self,
        op: ManifestOp,
        slot: u32,
        generation: u32,
        spill_len: u64,
    ) -> Result<(), ServeError> {
        if let Some(j) = self.journal.as_mut() {
            j.append(&mut self.persister, op, slot, generation, spill_len)?;
            self.journal_appends += 1;
        }
        Ok(())
    }

    /// Compact the journal if it has outgrown the live set.
    fn maybe_compact(&mut self) -> Result<(), ServeError> {
        let due = self
            .journal
            .as_ref()
            .is_some_and(|j| j.should_compact(self.slab.len()));
        if due {
            self.compact_now()?;
        }
        Ok(())
    }

    fn compact_now(&mut self) -> Result<(), ServeError> {
        if self.journal.is_none() {
            return Ok(());
        }
        let cp = self.manifest_checkpoint();
        let j = Journal::rewrite(
            &self.cfg.spill_dir,
            &cp,
            self.cfg.durability,
            &mut self.persister,
        )?;
        self.journal = Some(j);
        self.journal_compactions += 1;
        Ok(())
    }

    /// The registry's full current state as a checkpoint.
    fn manifest_checkpoint(&self) -> ManifestCheckpoint {
        let entries = self
            .slab
            .slots_snapshot()
            .map(|(slot, generation, tenant)| {
                let (status, spill_len) = match tenant {
                    None => (SlotStatus::Free, 0),
                    Some(t) => match t.state {
                        TenantState::Resident(_) => (SlotStatus::Resident, 0),
                        TenantState::Evicted => (SlotStatus::Spilled, t.spill_len),
                    },
                };
                CheckpointEntry {
                    slot,
                    generation,
                    status,
                    spill_len,
                }
            })
            .collect();
        ManifestCheckpoint {
            next_seq: self.journal.as_ref().map_or(0, |j| j.next_seq()),
            entries,
        }
    }

    /// Delete a spill file, counting (not hiding) real failures. An
    /// injected crash still propagates — a dead process deletes
    /// nothing.
    fn remove_spill(&mut self, path: &Path) -> Result<(), ServeError> {
        match self.persister.remove(path) {
            Ok(()) => Ok(()),
            Err(e @ ServeError::InjectedCrash(_)) => Err(e),
            Err(ServeError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(_) => {
                self.spill_remove_failed += 1;
                Ok(())
            }
        }
    }

    fn as_disk_backpressure(&self, e: ServeError) -> ServeError {
        if is_disk_full(&e) {
            ServeError::Backpressure {
                scope: BackpressureScope::Disk,
                cap: self.cfg.resident_cap,
                pending: self.lru.len(),
            }
        } else {
            e
        }
    }

    /// Bumps the logical clock onto the slot's tenant, keeping the LRU
    /// key in sync when resident.
    fn touch(&mut self, slot: u32) {
        self.clock += 1;
        let clock = self.clock;
        let tenant = self.slab.at_mut(slot).expect("touch on a live slot");
        let resident = matches!(tenant.state, TenantState::Resident(_));
        let old = tenant.stamp;
        tenant.stamp = clock;
        if resident {
            self.lru.remove(&old);
            self.lru.insert(clock, slot);
        }
    }

    fn lru_insert(&mut self, slot: u32) {
        let stamp = self.slab.at_mut(slot).expect("live slot").stamp;
        self.lru.insert(stamp, slot);
    }

    /// Restores a cold session from its spill file: read → validate →
    /// journal the restore → only then mutate state and delete the
    /// file. A crash mid-restore leaves the spill file (and journal)
    /// describing a state recovery can still adopt. The caller must
    /// have touched the slot first, so the freshly restored session is
    /// the *newest* resident and the next `evict_to_cap` never
    /// immediately re-evicts it (resident_cap >= 1).
    fn make_resident(&mut self, slot: u32) -> Result<(), ServeError> {
        let h = self.slab.handle_at(slot);
        let tenant = self.slab.at_mut(slot).expect("live slot");
        if matches!(tenant.state, TenantState::Resident(_)) {
            return Ok(());
        }
        let path = self.spill_path(h);
        let bytes = fs::read(&path)?;
        let engine =
            AfdEngine::restore_with_backend(&RestoreRequest::new(bytes), self.cfg.backend.clone())
                .map_err(|e| match e {
                    e @ AfdError::Wire(_) => ServeError::CorruptSpill {
                        path: path.clone(),
                        slot,
                        generation: h.generation(),
                        source: Box::new(e),
                    },
                    e => ServeError::Engine(e),
                })?;
        self.journal_append(ManifestOp::Restore, slot, h.generation(), 0)?;
        let tenant = self.slab.at_mut(slot).expect("live slot");
        tenant.state = TenantState::Resident(Box::new(engine));
        self.spill_bytes -= tenant.spill_len;
        tenant.spill_len = 0;
        self.remove_spill(&path)?;
        self.restores += 1;
        self.lru_insert(slot);
        Ok(())
    }

    /// Spills least-recently-touched residents until the cap holds.
    fn evict_to_cap(&mut self) -> Result<(), ServeError> {
        self.evict_down_to(self.cfg.resident_cap)
    }

    fn evict_down_to(&mut self, target: usize) -> Result<(), ServeError> {
        while self.lru.len() > target {
            let (_, slot) = self.lru.pop_first().expect("len > target >= 0");
            self.evict_slot(slot)?;
        }
        Ok(())
    }

    /// Spills one resident session (already removed from the LRU map):
    /// snapshot → atomic file write → journal the eviction → only then
    /// flip the registry state. Any failure puts the engine back
    /// resident — eviction never trades state for an error. A full disk
    /// comes back as typed [`BackpressureScope::Disk`] backpressure.
    fn evict_slot(&mut self, slot: u32) -> Result<(), ServeError> {
        let h = self.slab.handle_at(slot);
        let path = self.spill_path(h);
        let tenant = self.slab.at_mut(slot).expect("live slot");
        let state = std::mem::replace(&mut tenant.state, TenantState::Evicted);
        let TenantState::Resident(mut engine) = state else {
            unreachable!("evict_slot on a cold slot");
        };
        let snap = match engine.save(&SnapshotRequest::default()) {
            Ok(snap) => snap,
            Err(e) => {
                // Failed to capture: the session stays resident (and
                // back in the LRU) rather than losing state.
                let tenant = self.slab.at_mut(slot).expect("live slot");
                tenant.state = TenantState::Resident(engine);
                self.lru_insert(slot);
                return Err(ServeError::Engine(e));
            }
        };
        if let Err(e) = self.persister.write_atomic(&path, &snap.bytes) {
            let tenant = self.slab.at_mut(slot).expect("live slot");
            tenant.state = TenantState::Resident(engine);
            self.lru_insert(slot);
            return Err(self.as_disk_backpressure(e));
        }
        if let Err(e) = self.journal_append(
            ManifestOp::Evict,
            slot,
            h.generation(),
            snap.bytes.len() as u64,
        ) {
            // The file is durable but unacknowledged; recovery can
            // still adopt it. The live registry keeps the engine.
            let tenant = self.slab.at_mut(slot).expect("live slot");
            tenant.state = TenantState::Resident(engine);
            self.lru_insert(slot);
            return Err(e);
        }
        let len = snap.bytes.len() as u64;
        let tenant = self.slab.at_mut(slot).expect("live slot");
        tenant.spill_len = len;
        self.spill_bytes += len;
        self.evictions += 1;
        let _ = (*engine).shutdown();
        Ok(())
    }
}

impl Drop for AfdServe {
    fn drop(&mut self) {
        // Ephemeral servers treat spill files as working state and
        // sweep them. Durable servers leave everything: spill files +
        // journal ARE the state `AfdServe::recover` rebuilds from.
        if self.cfg.durability.journal {
            return;
        }
        let paths: Vec<PathBuf> = self.slab.handles().map(|h| self.spill_path(h)).collect();
        for path in paths {
            let _ = fs::remove_file(path);
        }
    }
}

/// `sess_<slot>_<generation>.snap` → `(slot, generation)`.
fn parse_spill_name(name: &str) -> Option<(u32, u32)> {
    let rest = name.strip_prefix("sess_")?.strip_suffix(".snap")?;
    let (slot, generation) = rest.split_once('_')?;
    Some((slot.parse().ok()?, generation.parse().ok()?))
}

/// Full validation of a spill file: the frame parses, checksums, and
/// decodes as a session snapshot.
fn spill_file_valid(path: &Path) -> bool {
    match fs::read(path) {
        Ok(bytes) => SessionSnapshot::from_bytes(&bytes).is_ok(),
        Err(_) => false,
    }
}

/// Move `path` into `spill_dir/quarantine/`, recording why. Never
/// deletes; a name collision gets a numeric suffix.
fn quarantine(
    spill_dir: &Path,
    path: &Path,
    reason: QuarantineReason,
    report: &mut RecoverReport,
) -> Result<(), ServeError> {
    let qdir = spill_dir.join("quarantine");
    fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".into());
    let mut dest = qdir.join(&name);
    let mut n = 1u32;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{n}"));
        n += 1;
    }
    fs::rename(path, &dest)?;
    report.quarantined.push(Quarantined { file: dest, reason });
    Ok(())
}
