//! The serving layer's unified error.

use crate::registry::SessionHandle;
use afd_engine::AfdError;
use afd_wire::DecodeError;

/// Which cap a rejected enqueue ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressureScope {
    /// The target session's own pending-delta queue is full.
    Session,
    /// The server-wide pending-delta budget is exhausted.
    Global,
    /// The spill device is full (`ENOSPC`): eviction could not persist a
    /// snapshot, so the session stays resident instead of losing state.
    /// Free disk (or release sessions), then retry.
    Disk,
    /// The socket front door is at its connection cap: the new
    /// connection was answered with this error and closed.
    Connections,
}

/// Everything a serve request can fail with.
///
/// The server's contract mirrors the engine's: every request returns
/// `Result<_, ServeError>`, and overload is an *answer*
/// ([`ServeError::Backpressure`]), never unbounded buffering or a
/// panic. Rejections are decided **before** any state changes, so a
/// failed call leaves the session — queue, engine, residency — exactly
/// as it was.
#[derive(Debug)]
pub enum ServeError {
    /// The handle's session was released (or never existed); its slot
    /// may have been reused under a newer generation.
    StaleHandle(SessionHandle),
    /// An enqueue was rejected at a queue cap. The caller owns the retry
    /// policy: tick to drain, then resubmit.
    Backpressure {
        /// Which cap rejected it.
        scope: BackpressureScope,
        /// The configured cap.
        cap: usize,
        /// Deltas already pending under that cap.
        pending: usize,
    },
    /// Registration was refused: the registry already holds
    /// `max_sessions` live sessions.
    AtCapacity {
        /// The configured registry cap.
        cap: usize,
    },
    /// Invalid server configuration (zero cap or budget), or a
    /// malformed front-door request frame.
    Config(String),
    /// The socket front door refused the request: a bad shared-secret
    /// token, or a stateful request before a successful `Hello`.
    /// Answered in-band — an unauthenticated connection stays open and
    /// may retry `Hello`.
    Auth(String),
    /// A server-side failure relayed over the socket as its display
    /// string. [`ServeError::Engine`], [`ServeError::Io`] and
    /// [`ServeError::CorruptSpill`] carry types that do not cross the
    /// wire losslessly; clients see them as this variant.
    Remote(String),
    /// The underlying engine failed (scoring, delta validation, snapshot
    /// codec).
    Engine(AfdError),
    /// Spill-file I/O failed (evict write, restore read).
    Io(std::io::Error),
    /// A spill file on disk failed frame/snapshot validation on restore.
    ///
    /// The file is left in place (recovery quarantines it; a live
    /// restore reports it) — corruption is surfaced and attributed to
    /// one session, never silently deleted and never allowed to poison
    /// other tenants' ticks.
    CorruptSpill {
        /// The offending spill file.
        path: std::path::PathBuf,
        /// The slot whose restore hit it.
        slot: u32,
        /// The slot generation whose restore hit it.
        generation: u32,
        /// What validation failed.
        source: Box<AfdError>,
    },
    /// A deterministic [`crate::CrashPlan`] fired: the simulated process
    /// died mid-persistence. Test-only by construction (plans are only
    /// injectable through `ServeConfig`); carries the site index that
    /// fired.
    #[doc(hidden)]
    InjectedCrash(u64),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::StaleHandle(h) => write!(f, "stale handle: {h} was released"),
            ServeError::Backpressure {
                scope,
                cap,
                pending,
            } => {
                let scope = match scope {
                    BackpressureScope::Session => "session queue",
                    BackpressureScope::Global => "global queue",
                    BackpressureScope::Disk => "spill disk",
                    BackpressureScope::Connections => "connection limit",
                };
                write!(f, "backpressure: {scope} at cap ({pending}/{cap} pending)")
            }
            ServeError::AtCapacity { cap } => {
                write!(f, "registry at capacity ({cap} sessions)")
            }
            ServeError::Config(msg) => write!(f, "serve configuration: {msg}"),
            ServeError::Auth(msg) => write!(f, "authentication refused: {msg}"),
            ServeError::Remote(msg) => write!(f, "server-side failure: {msg}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Io(e) => write!(f, "spill i/o: {e}"),
            ServeError::CorruptSpill {
                path,
                slot,
                generation,
                source,
            } => write!(
                f,
                "corrupt spill file {} for slot {slot} gen {generation}: {source}",
                path.display()
            ),
            ServeError::InjectedCrash(site) => {
                write!(f, "injected crash at persistence site {site}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::CorruptSpill { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<AfdError> for ServeError {
    fn from(e: AfdError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Engine(AfdError::Wire(e))
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ServeError::Backpressure {
            scope: BackpressureScope::Session,
            cap: 8,
            pending: 8,
        };
        assert!(e.to_string().contains("8/8"));
        let e = ServeError::from(AfdError::NoSuchCandidate(3));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServeError::AtCapacity { cap: 2 }.to_string().contains("2"));
    }
}
