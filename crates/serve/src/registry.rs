//! The generational-slab session registry.
//!
//! Sessions live in reusable slots; the external name of a session is a
//! [`SessionHandle`] — slot index **plus generation**. Releasing a
//! session bumps its slot's generation, so a handle kept past release
//! can never alias whatever tenant the slot is reused for: every lookup
//! checks the generation and answers a typed
//! [`ServeError::StaleHandle`] instead.

use crate::error::ServeError;

/// The stable external name of a registered session.
///
/// A handle stays valid across any number of evictions and restores —
/// it names the *session*, not its resident engine. It dies only when
/// the session is released, after which every use of it (including on a
/// reused slot) is a typed [`ServeError::StaleHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionHandle {
    index: u32,
    generation: u32,
}

impl SessionHandle {
    /// The slot index (dense, reused after release).
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The slot generation this handle was issued under.
    #[must_use]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Rebuilds a handle from its raw parts — how the socket front
    /// door's wire codec round-trips handles. A fabricated handle is
    /// harmless: anything that does not name a live slot + generation is
    /// answered with [`crate::ServeError::StaleHandle`].
    #[must_use]
    pub fn from_raw(index: u32, generation: u32) -> Self {
        SessionHandle { index, generation }
    }
}

impl std::fmt::Display for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session #{}.g{}", self.index, self.generation)
    }
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// The slab: a dense `Vec` of slots plus a free list. Insert prefers a
/// freed slot (whose generation was already bumped at release), so the
/// registry's footprint is `O(live sessions)`, not `O(ever registered)`.
#[derive(Debug)]
pub(crate) struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live sessions.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Registers a value, reusing a freed slot when one exists.
    pub(crate) fn insert(&mut self, value: T) -> SessionHandle {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            return SessionHandle {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("more than u32::MAX sessions");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        SessionHandle {
            index,
            generation: 0,
        }
    }

    /// The handle the next [`Slab::insert`] will issue, without
    /// inserting. This is what lets callers persist an admission
    /// *before* mutating the slab: journal `peek_next()`, then insert,
    /// and the two are guaranteed to name the same slot + generation.
    pub(crate) fn peek_next(&self) -> SessionHandle {
        if let Some(&index) = self.free.last() {
            SessionHandle {
                index,
                generation: self.slots[index as usize].generation,
            }
        } else {
            SessionHandle {
                index: u32::try_from(self.slots.len()).expect("more than u32::MAX sessions"),
                generation: 0,
            }
        }
    }

    /// Rebuilds a slab from recovered per-slot state: one
    /// `(generation, value)` pair per slot in slot order, `None` for
    /// free slots (whose generation is what the *next* tenant will be
    /// issued — exactly what a journal replay reconstructs). Handles
    /// issued before the crash keep working; released ones stay stale.
    pub(crate) fn restore_slots(entries: Vec<(u32, Option<T>)>) -> Self {
        let mut free = Vec::new();
        let mut len = 0usize;
        let slots: Vec<Slot<T>> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (generation, value))| {
                if value.is_some() {
                    len += 1;
                } else {
                    free.push(i as u32);
                }
                Slot { generation, value }
            })
            .collect();
        Slab { slots, free, len }
    }

    /// Every slot's `(index, generation, occupant)` in slot order —
    /// checkpoint/compaction input. Free slots appear too: their
    /// generations must survive so stale handles stay stale.
    pub(crate) fn slots_snapshot(&self) -> impl Iterator<Item = (u32, u32, Option<&T>)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.generation, s.value.as_ref()))
    }

    /// Validates a handle down to its slot index.
    pub(crate) fn slot_of(&self, h: SessionHandle) -> Result<u32, ServeError> {
        match self.slots.get(h.index as usize) {
            Some(slot) if slot.generation == h.generation && slot.value.is_some() => Ok(h.index),
            _ => Err(ServeError::StaleHandle(h)),
        }
    }

    pub(crate) fn get(&self, h: SessionHandle) -> Result<&T, ServeError> {
        let slot = self.slot_of(h)?;
        Ok(self.slots[slot as usize].value.as_ref().expect("validated"))
    }

    pub(crate) fn get_mut(&mut self, h: SessionHandle) -> Result<&mut T, ServeError> {
        let slot = self.slot_of(h)?;
        Ok(self.slots[slot as usize].value.as_mut().expect("validated"))
    }

    /// Removes the session and bumps the slot's generation — the handle
    /// (and any copy of it) is stale from here on.
    pub(crate) fn remove(&mut self, h: SessionHandle) -> Result<T, ServeError> {
        let index = self.slot_of(h)?;
        let slot = &mut self.slots[index as usize];
        let value = slot.value.take().expect("validated");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index);
        self.len -= 1;
        Ok(value)
    }

    /// Trusted access by slot index (internal queues hold bare slots).
    /// `None` when the slot was released since it was queued.
    pub(crate) fn at_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.value.as_mut()
    }

    /// Handles of every occupied slot (registry iteration for teardown
    /// and census paths — the hot paths never scan).
    pub(crate) fn handles(&self) -> impl Iterator<Item = SessionHandle> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|_| SessionHandle {
                index: i as u32,
                generation: s.generation,
            })
        })
    }

    /// The current handle of an occupied slot.
    pub(crate) fn handle_at(&self, slot: u32) -> SessionHandle {
        SessionHandle {
            index: slot,
            generation: self.slots[slot as usize].generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_survive_only_their_own_generation() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get(a).unwrap(), "a");
        assert_eq!(slab.remove(a).unwrap(), "a");
        assert_eq!(slab.len(), 1);
        // The handle is now typed-stale, for every access path.
        assert!(matches!(slab.get(a), Err(ServeError::StaleHandle(h)) if h == a));
        assert!(matches!(slab.get_mut(a), Err(ServeError::StaleHandle(_))));
        assert!(matches!(slab.remove(a), Err(ServeError::StaleHandle(_))));
        // Reuse takes the freed slot under a *new* generation: the old
        // handle still cannot reach the new tenant.
        let c = slab.insert("c");
        assert_eq!(c.index(), a.index());
        assert_eq!(c.generation(), a.generation() + 1);
        assert!(matches!(slab.get(a), Err(ServeError::StaleHandle(_))));
        assert_eq!(*slab.get(c).unwrap(), "c");
        assert_eq!(*slab.get(b).unwrap(), "b");
        assert_eq!(slab.handle_at(c.index()), c);
    }

    #[test]
    fn peek_next_predicts_insert_exactly() {
        let mut slab = Slab::new();
        assert_eq!(slab.peek_next(), slab.insert("a"));
        let b = slab.insert("b");
        slab.remove(b).unwrap();
        // Reuse path: freed slot, bumped generation.
        let predicted = slab.peek_next();
        assert_eq!(predicted.index(), b.index());
        assert_eq!(predicted.generation(), b.generation() + 1);
        assert_eq!(predicted, slab.insert("c"));
    }

    #[test]
    fn restore_slots_rebuilds_generations_and_free_list() {
        let slab = Slab::restore_slots(vec![(2, Some("x")), (5, None), (0, Some("y"))]);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.handle_at(0).generation(), 2);
        assert_eq!(*slab.get(slab.handle_at(0)).unwrap(), "x");
        // The free slot keeps its bumped generation for the next tenant,
        // so pre-crash handles to it remain stale.
        let stale = SessionHandle {
            index: 1,
            generation: 4,
        };
        assert!(matches!(slab.get(stale), Err(ServeError::StaleHandle(_))));
        let next = slab.peek_next();
        assert_eq!((next.index(), next.generation()), (1, 5));
    }

    #[test]
    fn out_of_range_handles_are_stale_not_panics() {
        let mut slab = Slab::<u8>::new();
        let h = slab.insert(7);
        let bogus = SessionHandle {
            index: 99,
            generation: 0,
        };
        assert!(matches!(slab.get(bogus), Err(ServeError::StaleHandle(_))));
        assert_eq!(format!("{h}"), "session #0.g0");
    }
}
