//! The socket front door: [`AfdServe`] behind a TCP accept loop, plus
//! the typed [`ServeClient`] that drives it.
//!
//! The library API ([`AfdServe`]) is a single-process, single-owner
//! object. This module puts a wire protocol in front of it so remote
//! tenants can register, enqueue, tick and read scores over a socket:
//!
//! * **Framing is reused, not reinvented.** Every request travels as
//!   one standard afd-wire frame of kind
//!   [`afd_wire::KIND_SERVE_REQUEST`]; every request is answered by
//!   exactly one frame of kind [`afd_wire::KIND_SERVE_RESPONSE`]. The
//!   magic/version/FNV-1a checksum layer is the same one snapshots and
//!   shard workers use, so a torn or bit-flipped request is a typed
//!   decode error, never a misparsed command.
//! * **Errors are answers.** A bad token, a stale handle, a queue at
//!   cap — all are encoded [`ServeError`]s sent in-band
//!   ([`ServeResponse::Err`]); the connection stays open and may retry.
//!   Only a connection-cap rejection closes the socket, and even that
//!   is answered with one typed
//!   [`ServeError::Backpressure`]/[`BackpressureScope::Connections`]
//!   frame first.
//! * **Auth is a protocol concern, not a transport one.** When
//!   [`FrontConfig::auth_token`] is set, a connection must open with
//!   [`ServeRequest::Hello`] carrying the shared secret (plus a tenant
//!   label for attribution) before any stateful request; failures are
//!   typed [`ServeError::Auth`] answers. The transport itself is
//!   plaintext TCP — TLS is a recorded follow-up, so tokens must only
//!   cross trusted networks.
//! * **A dropped connection is a deterministic event.** The server
//!   tracks which handles each connection registered. When the
//!   connection ends with handles still held, the configured
//!   [`DisconnectPolicy`] applies: `Release` frees them (slots reusable,
//!   handles stale), `Park` evicts them to spill (cold but addressable —
//!   the tenant may reconnect and resume via the same handle). Either
//!   way the registry never leaks a session to a vanished client, and
//!   the event is counted in `connections_dropped`.
//!
//! Engines cross the wire as their framed snapshot bytes (the same
//! `SessionSnapshot` format `afd save` writes): [`ServeRequest::Register`]
//! restores them into a resident engine on the server's configured
//! backend; [`ServeRequest::RegisterSnapshot`] validates and parks them
//! cold — the cheap path to a large registry.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use afd_engine::{AfdEngine, RestoreRequest};
use afd_net::{parse_listen_addr, Client, NetError};
use afd_relation::Fd;
use afd_stream::{RowDelta, StreamScores};
use afd_wire::{
    write_frame_to, Decode, DecodeError, Encode, Reader, StreamFrame, KIND_SERVE_REQUEST,
    KIND_SERVE_RESPONSE,
};

use crate::error::{BackpressureScope, ServeError};
use crate::registry::SessionHandle;
use crate::serve::{AfdServe, ServeStats, TickReport};

// ---------------------------------------------------------------------
// Protocol vocabulary

/// One request to a serving front door. Travels as the payload of a
/// [`afd_wire::KIND_SERVE_REQUEST`] frame; every variant is answered by
/// exactly one [`ServeResponse`] frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Opens the session: presents the shared-secret token and a tenant
    /// label. Required before any stateful request when the server has
    /// [`FrontConfig::auth_token`] configured; a no-op courtesy
    /// otherwise. A refused `Hello` leaves the connection open.
    Hello {
        /// The shared secret; compared verbatim.
        token: String,
        /// Who this connection is, for attribution in logs/audits.
        tenant: String,
    },
    /// Registers a session from framed snapshot bytes and makes it
    /// resident (restored on the server's configured backend).
    /// Answered with [`ServeResponse::Handle`].
    Register {
        /// `SessionSnapshot` bytes (what `AfdEngine::save` produces).
        snapshot: Vec<u8>,
    },
    /// Registers a session from framed snapshot bytes *cold*: validated
    /// and spilled, no engine built until first touch. Answered with
    /// [`ServeResponse::Handle`].
    RegisterSnapshot {
        /// `SessionSnapshot` bytes.
        snapshot: Vec<u8>,
    },
    /// Queues one delta for the session. Answered with
    /// [`ServeResponse::Pending`] (the session's queue depth after).
    Enqueue {
        /// The target session.
        handle: SessionHandle,
        /// The delta to queue.
        delta: RowDelta,
    },
    /// Runs one budgeted tick. Answered with [`ServeResponse::Tick`].
    Tick,
    /// Adds a scored subscription. Answered with
    /// [`ServeResponse::Subscribed`] (the candidate id).
    Subscribe {
        /// The target session.
        handle: SessionHandle,
        /// The FD to maintain scores for.
        fd: Fd,
    },
    /// Reads a candidate's scores. Answered with
    /// [`ServeResponse::Scores`].
    Scores {
        /// The target session.
        handle: SessionHandle,
        /// The candidate id from `Subscribe`.
        candidate: usize,
    },
    /// Releases the session (handle stale forever after). Answered with
    /// [`ServeResponse::Ok`].
    Release {
        /// The session to release.
        handle: SessionHandle,
    },
    /// Reads the server census (connection counters included). Answered
    /// with [`ServeResponse::Stats`].
    Stats,
    /// Asks the whole front door to stop accepting and shut down.
    /// Answered with [`ServeResponse::Ok`], then the connection closes.
    Shutdown,
}

impl Encode for ServeRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeRequest::Hello { token, tenant } => {
                out.push(0);
                token.encode(out);
                tenant.encode(out);
            }
            ServeRequest::Register { snapshot } => {
                out.push(1);
                snapshot.encode(out);
            }
            ServeRequest::RegisterSnapshot { snapshot } => {
                out.push(2);
                snapshot.encode(out);
            }
            ServeRequest::Enqueue { handle, delta } => {
                out.push(3);
                handle.encode(out);
                delta.encode(out);
            }
            ServeRequest::Tick => out.push(4),
            ServeRequest::Subscribe { handle, fd } => {
                out.push(5);
                handle.encode(out);
                fd.encode(out);
            }
            ServeRequest::Scores { handle, candidate } => {
                out.push(6);
                handle.encode(out);
                candidate.encode(out);
            }
            ServeRequest::Release { handle } => {
                out.push(7);
                handle.encode(out);
            }
            ServeRequest::Stats => out.push(8),
            ServeRequest::Shutdown => out.push(9),
        }
    }
}

impl Decode for ServeRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ServeRequest::Hello {
                token: String::decode(r)?,
                tenant: String::decode(r)?,
            },
            1 => ServeRequest::Register {
                snapshot: Vec::<u8>::decode(r)?,
            },
            2 => ServeRequest::RegisterSnapshot {
                snapshot: Vec::<u8>::decode(r)?,
            },
            3 => ServeRequest::Enqueue {
                handle: SessionHandle::decode(r)?,
                delta: RowDelta::decode(r)?,
            },
            4 => ServeRequest::Tick,
            5 => ServeRequest::Subscribe {
                handle: SessionHandle::decode(r)?,
                fd: Fd::decode(r)?,
            },
            6 => ServeRequest::Scores {
                handle: SessionHandle::decode(r)?,
                candidate: usize::decode(r)?,
            },
            7 => ServeRequest::Release {
                handle: SessionHandle::decode(r)?,
            },
            8 => ServeRequest::Stats,
            9 => ServeRequest::Shutdown,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "ServeRequest",
                    tag,
                })
            }
        })
    }
}

/// One answer from a serving front door — the payload of a
/// [`afd_wire::KIND_SERVE_RESPONSE`] frame.
#[derive(Debug)]
pub enum ServeResponse {
    /// The request succeeded with nothing to return.
    Ok,
    /// A registration succeeded; this names the session from now on.
    Handle(SessionHandle),
    /// An enqueue succeeded; the session's pending-queue depth after.
    Pending(u64),
    /// A tick ran.
    Tick(TickReport),
    /// A subscription was added; the candidate id for `Scores`.
    Subscribed(u64),
    /// A score read.
    Scores(StreamScores),
    /// A census, with the front door's connection counters overlaid.
    Stats(ServeStats),
    /// The request failed; the connection stays open (except at the
    /// connection cap, which closes after this answer).
    Err(ServeError),
}

impl Encode for ServeResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeResponse::Ok => out.push(0),
            ServeResponse::Handle(h) => {
                out.push(1);
                h.encode(out);
            }
            ServeResponse::Pending(n) => {
                out.push(2);
                n.encode(out);
            }
            ServeResponse::Tick(report) => {
                out.push(3);
                report.encode(out);
            }
            ServeResponse::Subscribed(cid) => {
                out.push(4);
                cid.encode(out);
            }
            ServeResponse::Scores(scores) => {
                out.push(5);
                scores.encode(out);
            }
            ServeResponse::Stats(stats) => {
                out.push(6);
                stats.encode(out);
            }
            ServeResponse::Err(e) => {
                out.push(7);
                e.encode(out);
            }
        }
    }
}

impl Decode for ServeResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ServeResponse::Ok,
            1 => ServeResponse::Handle(SessionHandle::decode(r)?),
            2 => ServeResponse::Pending(u64::decode(r)?),
            3 => ServeResponse::Tick(TickReport::decode(r)?),
            4 => ServeResponse::Subscribed(u64::decode(r)?),
            5 => ServeResponse::Scores(StreamScores::decode(r)?),
            6 => ServeResponse::Stats(ServeStats::decode(r)?),
            7 => ServeResponse::Err(ServeError::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    what: "ServeResponse",
                    tag,
                })
            }
        })
    }
}

impl Encode for SessionHandle {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
        self.generation().encode(out);
    }
}

impl Decode for SessionHandle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SessionHandle::from_raw(u32::decode(r)?, u32::decode(r)?))
    }
}

impl Encode for BackpressureScope {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            BackpressureScope::Session => 0,
            BackpressureScope::Global => 1,
            BackpressureScope::Disk => 2,
            BackpressureScope::Connections => 3,
        });
    }
}

impl Decode for BackpressureScope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => BackpressureScope::Session,
            1 => BackpressureScope::Global,
            2 => BackpressureScope::Disk,
            3 => BackpressureScope::Connections,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "BackpressureScope",
                    tag,
                })
            }
        })
    }
}

/// The wire form of [`ServeError`] is **lossy for server-side faults**:
/// [`ServeError::Engine`], [`ServeError::Io`], [`ServeError::CorruptSpill`]
/// and the injected-crash variant carry types that do not cross the
/// wire, so they travel as [`ServeError::Remote`] with their display
/// string. The admission vocabulary (stale handle, backpressure,
/// capacity, config, auth) round-trips exactly.
impl Encode for ServeError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeError::StaleHandle(h) => {
                out.push(0);
                h.encode(out);
            }
            ServeError::Backpressure {
                scope,
                cap,
                pending,
            } => {
                out.push(1);
                scope.encode(out);
                cap.encode(out);
                pending.encode(out);
            }
            ServeError::AtCapacity { cap } => {
                out.push(2);
                cap.encode(out);
            }
            ServeError::Config(msg) => {
                out.push(3);
                msg.encode(out);
            }
            ServeError::Auth(msg) => {
                out.push(4);
                msg.encode(out);
            }
            ServeError::Remote(msg) => {
                out.push(5);
                msg.encode(out);
            }
            lossy => {
                out.push(5);
                lossy.to_string().encode(out);
            }
        }
    }
}

impl Decode for ServeError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ServeError::StaleHandle(SessionHandle::decode(r)?),
            1 => ServeError::Backpressure {
                scope: BackpressureScope::decode(r)?,
                cap: usize::decode(r)?,
                pending: usize::decode(r)?,
            },
            2 => ServeError::AtCapacity {
                cap: usize::decode(r)?,
            },
            3 => ServeError::Config(String::decode(r)?),
            4 => ServeError::Auth(String::decode(r)?),
            5 => ServeError::Remote(String::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    what: "ServeError",
                    tag,
                })
            }
        })
    }
}

impl Encode for TickReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.deltas_applied.encode(out);
        self.deltas_failed.encode(out);
        self.sessions_visited.encode(out);
        self.restores.encode(out);
        self.evictions.encode(out);
        self.restore_failed.encode(out);
        self.spill_backpressure.encode(out);
        self.budget_exhausted.encode(out);
        self.remaining.encode(out);
    }
}

impl Decode for TickReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TickReport {
            deltas_applied: usize::decode(r)?,
            deltas_failed: usize::decode(r)?,
            sessions_visited: usize::decode(r)?,
            restores: usize::decode(r)?,
            evictions: usize::decode(r)?,
            restore_failed: usize::decode(r)?,
            spill_backpressure: bool::decode(r)?,
            budget_exhausted: bool::decode(r)?,
            remaining: usize::decode(r)?,
        })
    }
}

impl Encode for ServeStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sessions.encode(out);
        self.resident.encode(out);
        self.pending.encode(out);
        self.spill_bytes.encode(out);
        self.ticks.encode(out);
        self.deltas_applied.encode(out);
        self.deltas_failed.encode(out);
        self.evictions.encode(out);
        self.restores.encode(out);
        self.rejected_session.encode(out);
        self.rejected_global.encode(out);
        self.spill_remove_failed.encode(out);
        self.restore_failed.encode(out);
        self.journal_appends.encode(out);
        self.journal_compactions.encode(out);
        self.connections_accepted.encode(out);
        self.connections_rejected.encode(out);
        self.connections_dropped.encode(out);
    }
}

impl Decode for ServeStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ServeStats {
            sessions: usize::decode(r)?,
            resident: usize::decode(r)?,
            pending: usize::decode(r)?,
            spill_bytes: u64::decode(r)?,
            ticks: u64::decode(r)?,
            deltas_applied: u64::decode(r)?,
            deltas_failed: u64::decode(r)?,
            evictions: u64::decode(r)?,
            restores: u64::decode(r)?,
            rejected_session: u64::decode(r)?,
            rejected_global: u64::decode(r)?,
            spill_remove_failed: u64::decode(r)?,
            restore_failed: u64::decode(r)?,
            journal_appends: u64::decode(r)?,
            journal_compactions: u64::decode(r)?,
            connections_accepted: u64::decode(r)?,
            connections_rejected: u64::decode(r)?,
            connections_dropped: u64::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Server

/// What happens to the handles a connection registered when that
/// connection ends without releasing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectPolicy {
    /// Release them: slots are freed for reuse, the handles are typed
    /// stale forever. The default — a vanished client's sessions do not
    /// occupy the registry.
    Release,
    /// Park them: evict to spill (cold but addressable). A tenant that
    /// reconnects can resume through the same handle; the sessions
    /// occupy registry slots (and disk) until someone releases them.
    Park,
}

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// When set, every connection must open with a matching
    /// [`ServeRequest::Hello`] before any stateful request.
    pub auth_token: Option<String>,
    /// Most concurrently admitted connections; the excess are answered
    /// with one typed [`BackpressureScope::Connections`] frame and
    /// closed. At least 1.
    pub max_connections: usize,
    /// What happens to a dropped connection's registered handles.
    pub disconnect: DisconnectPolicy,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            auth_token: None,
            max_connections: 64,
            disconnect: DisconnectPolicy::Release,
        }
    }
}

struct Shared {
    cfg: FrontConfig,
    addr: SocketAddr,
    serve: Mutex<AfdServe>,
    stop: AtomicBool,
    open: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    dropped: AtomicU64,
    /// Read halves of live connections, so `stop()` can unblock their
    /// handler threads with a socket shutdown. Entries remove
    /// themselves when the handler exits — churn does not leak fds.
    conns: Mutex<HashMap<u64, TcpStream>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Locks the server, riding out a poisoned mutex (a panicking
    /// handler must not take the whole front door down).
    fn serve(&self) -> MutexGuard<'_, AfdServe> {
        self.serve
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A census with the front door's connection counters overlaid.
    fn stats_overlaid(&self, serve: &AfdServe) -> ServeStats {
        let mut stats = serve.stats();
        stats.connections_accepted = self.accepted.load(Ordering::Relaxed);
        stats.connections_rejected = self.rejected.load(Ordering::Relaxed);
        stats.connections_dropped = self.dropped.load(Ordering::Relaxed);
        stats
    }

    /// Connects to our own listener to unblock a blocking `accept`.
    fn poke(&self) {
        let _ = TcpStream::connect(self.addr);
    }

    /// Answers one request. `authed`/`tenant`/`handles` are the
    /// connection's state: whether `Hello` succeeded, who the tenant
    /// says it is, and which handles this connection still owns.
    fn answer(
        &self,
        req: ServeRequest,
        authed: &mut bool,
        tenant: &mut String,
        handles: &mut HashSet<SessionHandle>,
    ) -> ServeResponse {
        if let ServeRequest::Hello { token, tenant: who } = req {
            return match &self.cfg.auth_token {
                Some(expect) if *expect != token => {
                    ServeResponse::Err(ServeError::Auth("bad token".to_string()))
                }
                _ => {
                    *authed = true;
                    *tenant = who;
                    ServeResponse::Ok
                }
            };
        }
        if !*authed {
            return ServeResponse::Err(ServeError::Auth(
                "hello with a valid token required first".to_string(),
            ));
        }
        match req {
            ServeRequest::Hello { .. } => unreachable!("handled above"),
            ServeRequest::Register { snapshot } => {
                let mut serve = self.serve();
                let backend = serve.config().backend.clone();
                let registered =
                    AfdEngine::restore_with_backend(&RestoreRequest::new(snapshot), backend)
                        .map_err(ServeError::from)
                        .and_then(|engine| serve.register(engine));
                match registered {
                    Ok(h) => {
                        handles.insert(h);
                        ServeResponse::Handle(h)
                    }
                    Err(e) => ServeResponse::Err(e),
                }
            }
            ServeRequest::RegisterSnapshot { snapshot } => {
                match self.serve().register_snapshot(&snapshot) {
                    Ok(h) => {
                        handles.insert(h);
                        ServeResponse::Handle(h)
                    }
                    Err(e) => ServeResponse::Err(e),
                }
            }
            ServeRequest::Enqueue { handle, delta } => match self.serve().enqueue(handle, delta) {
                Ok(pending) => ServeResponse::Pending(pending as u64),
                Err(e) => ServeResponse::Err(e),
            },
            ServeRequest::Tick => match self.serve().tick() {
                Ok(report) => ServeResponse::Tick(report),
                Err(e) => ServeResponse::Err(e),
            },
            ServeRequest::Subscribe { handle, fd } => match self.serve().subscribe(handle, fd) {
                Ok(cid) => ServeResponse::Subscribed(cid as u64),
                Err(e) => ServeResponse::Err(e),
            },
            ServeRequest::Scores { handle, candidate } => {
                match self.serve().scores(handle, candidate) {
                    Ok(scores) => ServeResponse::Scores(scores),
                    Err(e) => ServeResponse::Err(e),
                }
            }
            ServeRequest::Release { handle } => match self.serve().release(handle) {
                Ok(()) => {
                    handles.remove(&handle);
                    ServeResponse::Ok
                }
                Err(e) => ServeResponse::Err(e),
            },
            ServeRequest::Stats => {
                let serve = self.serve();
                ServeResponse::Stats(self.stats_overlaid(&serve))
            }
            // The stop flag is raised by the connection handler *after*
            // this answer is on the wire — raising it here would race
            // the front door's teardown against the response write and
            // the client could see a dead socket instead of its Ok.
            ServeRequest::Shutdown => ServeResponse::Ok,
        }
    }
}

fn respond(stream: &mut TcpStream, resp: &ServeResponse) -> std::io::Result<()> {
    write_frame_to(stream, KIND_SERVE_RESPONSE, &resp.encode_to_vec()).map_err(|e| match e {
        afd_wire::FrameReadError::Io(e) => e,
        afd_wire::FrameReadError::Decode(e) => std::io::Error::other(e.to_string()),
    })
}

/// One admitted connection, to completion. Requests are answered
/// in order; protocol garbage is answered in-band where possible and
/// otherwise ends the connection; the disconnect policy runs on exit.
fn handle_conn(shared: &Shared, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let mut write = stream;
    let mut authed = shared.cfg.auth_token.is_none();
    let mut tenant = String::new();
    let mut handles: HashSet<SessionHandle> = HashSet::new();
    if let Ok(mut read) = write.try_clone() {
        // Eof and read errors both end the connection.
        while let Ok(StreamFrame::Frame(kind, payload)) = afd_wire::read_frame_from(&mut read) {
            if kind != KIND_SERVE_REQUEST {
                let resp = ServeResponse::Err(ServeError::Config(format!(
                    "unexpected frame kind {kind} (want {KIND_SERVE_REQUEST})"
                )));
                if respond(&mut write, &resp).is_err() {
                    break;
                }
                continue;
            }
            let req = match ServeRequest::decode_exact(&payload) {
                Ok(req) => req,
                Err(e) => {
                    let resp =
                        ServeResponse::Err(ServeError::Config(format!("bad request frame: {e}")));
                    if respond(&mut write, &resp).is_err() {
                        break;
                    }
                    continue;
                }
            };
            let closing = matches!(req, ServeRequest::Shutdown);
            let resp = shared.answer(req, &mut authed, &mut tenant, &mut handles);
            let answered = respond(&mut write, &resp).is_ok();
            if closing {
                // Only now — with the Ok answered — wake the accept
                // loop so teardown cannot race the response write.
                shared.stop.store(true, Ordering::SeqCst);
                shared.poke();
            }
            if !answered || closing {
                break;
            }
        }
    }
    // The disconnect policy: never leak a vanished client's sessions.
    if !handles.is_empty() {
        let mut serve = shared.serve();
        for h in handles.drain() {
            match shared.cfg.disconnect {
                DisconnectPolicy::Release => {
                    let _ = serve.release(h);
                }
                DisconnectPolicy::Park => {
                    let _ = serve.evict(h);
                }
            }
        }
        drop(serve);
        shared.dropped.fetch_add(1, Ordering::Relaxed);
        if !tenant.is_empty() {
            eprintln!("afd-serve: tenant {tenant:?} disconnected holding handles");
        }
    }
    shared
        .conns
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&conn_id);
    shared.open.fetch_sub(1, Ordering::SeqCst);
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut next_conn = 0u64;
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let open = shared.open.load(Ordering::SeqCst);
        if open >= shared.cfg.max_connections {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            // One typed answer, then the drop closes the socket.
            let resp = ServeResponse::Err(ServeError::Backpressure {
                scope: BackpressureScope::Connections,
                cap: shared.cfg.max_connections,
                pending: open,
            });
            let _ = respond(&mut stream, &resp);
            continue;
        }
        shared.open.fetch_add(1, Ordering::SeqCst);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_id = next_conn;
        next_conn += 1;
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(conn_id, clone);
        }
        let worker_shared = Arc::clone(shared);
        let worker = std::thread::spawn(move || handle_conn(&worker_shared, stream, conn_id));
        shared
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(worker);
    }
}

/// The accept-loop server: owns an [`AfdServe`] behind a mutex, admits
/// connections up to [`FrontConfig::max_connections`], and serves each
/// on its own thread until a [`ServeRequest::Shutdown`] (or
/// [`ServeFront::stop`]) ends it.
pub struct ServeFront {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl ServeFront {
    /// Binds `addr` (e.g. `127.0.0.1:0` — port 0 picks a free port;
    /// read the real one back from [`ServeFront::addr`]) and starts
    /// accepting.
    ///
    /// # Errors
    /// [`ServeError::Config`] on an unparseable address or a zero
    /// connection cap; [`ServeError::Io`] when the bind fails.
    pub fn bind(serve: AfdServe, cfg: FrontConfig, addr: &str) -> Result<Self, ServeError> {
        if cfg.max_connections == 0 {
            return Err(ServeError::Config(
                "max_connections: 0 would refuse every connection; want at least 1".to_string(),
            ));
        }
        let addr = parse_listen_addr(addr).map_err(|e| ServeError::Config(e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            addr,
            serve: Mutex::new(serve),
            stop: AtomicBool::new(false),
            open: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
        });
        let loop_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&loop_shared, &listener));
        Ok(ServeFront {
            shared,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (real port even when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A census with connection counters overlaid — what a remote
    /// [`ServeRequest::Stats`] would see.
    pub fn stats(&self) -> ServeStats {
        let serve = self.shared.serve();
        self.shared.stats_overlaid(&serve)
    }

    /// Blocks until a client's [`ServeRequest::Shutdown`] (or a
    /// concurrent [`ServeFront::stop`]) ends the accept loop — how
    /// `afd serve --listen` parks its main thread.
    pub fn wait_shutdown(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting, unblocks and joins every connection handler,
    /// and returns the server plus its final census (connection
    /// counters included).
    pub fn stop(mut self) -> (AfdServe, ServeStats) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.poke();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Shut down live connections so blocked handler reads return.
        let conns: Vec<TcpStream> = {
            let mut map = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.drain().map(|(_, s)| s).collect()
        };
        for conn in conns {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut list = self
                .shared
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            list.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| unreachable!("all front-door threads joined"));
        let serve = shared
            .serve
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stats = {
            let mut stats = serve.stats();
            stats.connections_accepted = shared.accepted.load(Ordering::Relaxed);
            stats.connections_rejected = shared.rejected.load(Ordering::Relaxed);
            stats.connections_dropped = shared.dropped.load(Ordering::Relaxed);
            stats
        };
        (serve, stats)
    }
}

// ---------------------------------------------------------------------
// Client

/// The typed client for a [`ServeFront`]: a blocking, framed,
/// deadline-bounded request/response wrapper over [`afd_net::Client`].
/// Every method sends one request frame and decodes one response frame;
/// a server-side failure comes back as the typed [`ServeError`] the
/// server answered with.
#[derive(Debug)]
pub struct ServeClient {
    client: Client,
}

fn from_net(e: NetError) -> ServeError {
    ServeError::Io(std::io::Error::other(e.to_string()))
}

impl ServeClient {
    /// Connects to a front door. `deadline` bounds every request's
    /// round-trip ([`afd_net::DEFAULT_CLIENT_DEADLINE`] is a sane
    /// default).
    ///
    /// # Errors
    /// [`ServeError::Config`] on an unparseable address,
    /// [`ServeError::Io`] when the dial fails.
    pub fn connect(addr: &str, deadline: Duration) -> Result<Self, ServeError> {
        // Parse first so a malformed address is a typed Config error,
        // distinct from a refused dial.
        afd_net::parse_connect_addr(addr).map_err(|e| ServeError::Config(e.to_string()))?;
        let client = Client::connect(addr, deadline).map_err(from_net)?;
        Ok(ServeClient { client })
    }

    /// The server address this client dialed.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.client.addr()
    }

    fn request(&mut self, req: &ServeRequest) -> Result<ServeResponse, ServeError> {
        let (kind, payload) = self
            .client
            .request(KIND_SERVE_REQUEST, &req.encode_to_vec())
            .map_err(from_net)?;
        if kind != KIND_SERVE_RESPONSE {
            return Err(ServeError::Remote(format!(
                "unexpected response frame kind {kind} (want {KIND_SERVE_RESPONSE})"
            )));
        }
        Ok(ServeResponse::decode_exact(&payload)?)
    }

    /// Authenticates the connection ([`ServeRequest::Hello`]).
    ///
    /// # Errors
    /// [`ServeError::Auth`] on a bad token (the connection stays usable
    /// — retry with the right one); transport errors as
    /// [`ServeError::Io`].
    pub fn hello(&mut self, token: &str, tenant: &str) -> Result<(), ServeError> {
        match self.request(&ServeRequest::Hello {
            token: token.to_string(),
            tenant: tenant.to_string(),
        })? {
            ServeResponse::Ok => Ok(()),
            other => Err(unexpected("hello", &other)),
        }
    }

    /// Registers snapshot bytes as a resident session.
    pub fn register(&mut self, snapshot: Vec<u8>) -> Result<SessionHandle, ServeError> {
        match self.request(&ServeRequest::Register { snapshot })? {
            ServeResponse::Handle(h) => Ok(h),
            other => Err(unexpected("register", &other)),
        }
    }

    /// Registers snapshot bytes cold (validated, spilled, no engine
    /// until first touch).
    pub fn register_snapshot(&mut self, snapshot: Vec<u8>) -> Result<SessionHandle, ServeError> {
        match self.request(&ServeRequest::RegisterSnapshot { snapshot })? {
            ServeResponse::Handle(h) => Ok(h),
            other => Err(unexpected("register-snapshot", &other)),
        }
    }

    /// Queues one delta; returns the session's pending depth after.
    pub fn enqueue(&mut self, handle: SessionHandle, delta: RowDelta) -> Result<usize, ServeError> {
        match self.request(&ServeRequest::Enqueue { handle, delta })? {
            ServeResponse::Pending(n) => Ok(n as usize),
            other => Err(unexpected("enqueue", &other)),
        }
    }

    /// Runs one budgeted tick on the server.
    pub fn tick(&mut self) -> Result<TickReport, ServeError> {
        match self.request(&ServeRequest::Tick)? {
            ServeResponse::Tick(report) => Ok(report),
            other => Err(unexpected("tick", &other)),
        }
    }

    /// Adds a scored subscription; returns the candidate id.
    pub fn subscribe(&mut self, handle: SessionHandle, fd: Fd) -> Result<usize, ServeError> {
        match self.request(&ServeRequest::Subscribe { handle, fd })? {
            ServeResponse::Subscribed(cid) => Ok(cid as usize),
            other => Err(unexpected("subscribe", &other)),
        }
    }

    /// Reads a candidate's scores (bit-exact across the wire — scores
    /// travel as IEEE-754 bit patterns).
    pub fn scores(
        &mut self,
        handle: SessionHandle,
        candidate: usize,
    ) -> Result<StreamScores, ServeError> {
        match self.request(&ServeRequest::Scores { handle, candidate })? {
            ServeResponse::Scores(scores) => Ok(scores),
            other => Err(unexpected("scores", &other)),
        }
    }

    /// Releases a session.
    pub fn release(&mut self, handle: SessionHandle) -> Result<(), ServeError> {
        match self.request(&ServeRequest::Release { handle })? {
            ServeResponse::Ok => Ok(()),
            other => Err(unexpected("release", &other)),
        }
    }

    /// Reads the server census, connection counters included.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        match self.request(&ServeRequest::Stats)? {
            ServeResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the server to shut down, then closes this connection.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        match self.request(&ServeRequest::Shutdown)? {
            ServeResponse::Ok => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn unexpected(what: &str, resp: &ServeResponse) -> ServeError {
    match resp {
        ServeResponse::Err(e) => {
            // Round-trip the typed error out of the generic answer.
            let bytes = e.encode_to_vec();
            ServeError::decode_exact(&bytes)
                .unwrap_or_else(|_| ServeError::Remote(format!("{what}: undecodable error")))
        }
        other => ServeError::Remote(format!("{what}: unexpected response {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ServeConfig;
    use afd_engine::{AfdEngine, SnapshotRequest, SubscribeRequest};
    use afd_relation::{AttrId, Relation, Value};
    use std::path::PathBuf;

    struct SpillDir(PathBuf);

    impl SpillDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("afd-front-test-{tag}-{}", std::process::id()));
            SpillDir(dir)
        }
    }

    impl Drop for SpillDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn engine_bytes(seed: u64) -> (AfdEngine, Vec<u8>) {
        let rel = Relation::from_pairs([(seed, 10), (seed, 10), (seed + 1, 20)]);
        let mut engine = AfdEngine::from_relation(rel);
        engine
            .subscribe(&SubscribeRequest::new(Fd::linear(AttrId(0), AttrId(1))))
            .unwrap();
        let bytes = engine.save(&SnapshotRequest::default()).unwrap().bytes;
        (engine, bytes)
    }

    fn insert(x: i64, y: i64) -> RowDelta {
        RowDelta {
            inserts: vec![vec![Value::Int(x), Value::Int(y)]],
            deletes: vec![],
        }
    }

    fn front(tag: &str, cfg: FrontConfig) -> (SpillDir, ServeFront) {
        let dir = SpillDir::new(tag);
        let serve = AfdServe::new(ServeConfig::new(&dir.0)).unwrap();
        let front = ServeFront::bind(serve, cfg, "127.0.0.1:0").unwrap();
        (dir, front)
    }

    fn client(front: &ServeFront) -> ServeClient {
        ServeClient::connect(&front.addr().to_string(), Duration::from_secs(10)).unwrap()
    }

    #[test]
    fn protocol_round_trips_and_rejects_bad_tags() {
        let reqs = [
            ServeRequest::Hello {
                token: "s3cret".into(),
                tenant: "t".into(),
            },
            ServeRequest::Register {
                snapshot: vec![1, 2, 3],
            },
            ServeRequest::Enqueue {
                handle: SessionHandle::from_raw(3, 7),
                delta: insert(1, 2),
            },
            ServeRequest::Tick,
            ServeRequest::Scores {
                handle: SessionHandle::from_raw(0, 0),
                candidate: 2,
            },
            ServeRequest::Shutdown,
        ];
        for req in reqs {
            let bytes = req.encode_to_vec();
            assert_eq!(ServeRequest::decode_exact(&bytes).unwrap(), req);
        }
        assert!(matches!(
            ServeRequest::decode_exact(&[200]),
            Err(DecodeError::BadTag {
                what: "ServeRequest",
                ..
            })
        ));
        // Typed errors round-trip; server-side faults go lossy-Remote.
        let err = ServeError::Backpressure {
            scope: BackpressureScope::Connections,
            cap: 4,
            pending: 4,
        };
        let back = ServeError::decode_exact(&err.encode_to_vec()).unwrap();
        assert!(matches!(
            back,
            ServeError::Backpressure {
                scope: BackpressureScope::Connections,
                cap: 4,
                pending: 4
            }
        ));
        let io = ServeError::Io(std::io::Error::other("disk gone"));
        match ServeError::decode_exact(&io.encode_to_vec()).unwrap() {
            ServeError::Remote(msg) => assert!(msg.contains("disk gone")),
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn front_door_serves_bit_identically_to_the_library() {
        let (_dir, front) = front("serve", FrontConfig::default());
        let mut cli = client(&front);
        let (mut twin, bytes) = engine_bytes(0);
        let pre_delta = twin.scores(0).unwrap();
        let h = cli.register(bytes.clone()).unwrap();
        assert_eq!(cli.enqueue(h, insert(5, 5)).unwrap(), 1);
        let report = cli.tick().unwrap();
        assert_eq!(report.deltas_applied, 1);
        twin.delta(&afd_engine::DeltaRequest::new(insert(5, 5)))
            .unwrap();
        let remote = cli.scores(h, 0).unwrap();
        assert!(remote.bits_eq(&twin.scores(0).unwrap()));
        // Cold registration works over the wire too: the snapshot was
        // taken before the delta, so it reads the pre-delta scores.
        let h2 = cli.register_snapshot(bytes).unwrap();
        let cold = cli.scores(h2, 0).unwrap();
        assert!(cold.bits_eq(&pre_delta));
        // Clean release: no handles held at disconnect.
        cli.release(h).unwrap();
        cli.release(h2).unwrap();
        let stats = cli.stats().unwrap();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.sessions, 0);
        drop(cli);
        let (_serve, stats) = front.stop();
        assert_eq!(stats.connections_dropped, 0);
    }

    #[test]
    fn auth_is_required_and_refusals_keep_the_connection() {
        let (_dir, front) = front(
            "auth",
            FrontConfig {
                auth_token: Some("s3cret".to_string()),
                ..FrontConfig::default()
            },
        );
        let mut cli = client(&front);
        // Stateful before hello: typed Auth, in-band.
        assert!(matches!(cli.tick(), Err(ServeError::Auth(_))));
        // Bad token: typed Auth, connection still usable.
        assert!(matches!(cli.hello("wrong", "t"), Err(ServeError::Auth(_))));
        // Right token on the same connection.
        cli.hello("s3cret", "tenant-a").unwrap();
        cli.tick().unwrap();
        drop(cli);
        front.stop();
    }

    #[test]
    fn stale_and_fabricated_handles_answer_in_band() {
        let (_dir, front) = front("stale", FrontConfig::default());
        let mut cli = client(&front);
        let fake = SessionHandle::from_raw(42, 9);
        assert!(matches!(
            cli.scores(fake, 0),
            Err(ServeError::StaleHandle(h)) if h == fake
        ));
        // The connection survived the error.
        cli.tick().unwrap();
        drop(cli);
        front.stop();
    }

    #[test]
    fn connection_cap_answers_typed_backpressure() {
        let (_dir, front) = front(
            "cap",
            FrontConfig {
                max_connections: 1,
                ..FrontConfig::default()
            },
        );
        let mut first = client(&front);
        first.tick().unwrap();
        let mut second = client(&front);
        match second.tick() {
            Err(ServeError::Backpressure {
                scope: BackpressureScope::Connections,
                cap: 1,
                ..
            }) => {}
            other => panic!("expected connection backpressure, got {other:?}"),
        }
        drop(second);
        drop(first);
        let (_serve, stats) = front.stop();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.connections_rejected, 1);
    }

    #[test]
    fn dropped_connections_release_their_handles() {
        let (_dir, front) = front("drop", FrontConfig::default());
        let (_twin, bytes) = engine_bytes(2);
        let mut cli = client(&front);
        let h = cli.register(bytes).unwrap();
        assert_eq!(cli.stats().unwrap().sessions, 1);
        drop(cli); // vanish without releasing
                   // The handler notices the EOF and applies the policy; poll the
                   // census until it lands (the disconnect is asynchronous).
        let mut released = false;
        for _ in 0..200 {
            let stats = front.stats();
            if stats.sessions == 0 && stats.connections_dropped == 1 {
                released = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(released, "disconnect policy did not release the handle");
        let (mut serve, _) = front.stop();
        assert!(matches!(
            serve.scores(h, 0),
            Err(ServeError::StaleHandle(_))
        ));
    }

    #[test]
    fn park_policy_keeps_sessions_addressable() {
        let (_dir, front) = front(
            "park",
            FrontConfig {
                disconnect: DisconnectPolicy::Park,
                ..FrontConfig::default()
            },
        );
        let (twin, bytes) = engine_bytes(3);
        let mut cli = client(&front);
        let h = cli.register(bytes).unwrap();
        drop(cli);
        let mut parked = false;
        for _ in 0..200 {
            if front.stats().connections_dropped == 1 {
                parked = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(parked);
        // A reconnecting tenant resumes through the same handle.
        let mut cli = client(&front);
        let scores = cli.scores(h, 0).unwrap();
        assert!(scores.bits_eq(&twin.scores(0).unwrap()));
        cli.release(h).unwrap();
        drop(cli);
        front.stop();
    }

    #[test]
    fn shutdown_request_stops_the_front_door() {
        let (_dir, mut front) = front("shutdown", FrontConfig::default());
        let cli = client(&front);
        cli.shutdown().unwrap();
        front.wait_shutdown(); // returns because the accept loop ended
        let (_serve, stats) = front.stop();
        assert_eq!(stats.connections_accepted, 1);
    }

    #[test]
    fn zero_connection_cap_is_a_config_error() {
        let dir = SpillDir::new("zerocap");
        let serve = AfdServe::new(ServeConfig::new(&dir.0)).unwrap();
        let cfg = FrontConfig {
            max_connections: 0,
            ..FrontConfig::default()
        };
        assert!(matches!(
            ServeFront::bind(serve, cfg, "127.0.0.1:0"),
            Err(ServeError::Config(_))
        ));
        // And so is a garbage address (typed at the serve boundary too).
        let serve = AfdServe::new(ServeConfig::new(dir.0.join("b"))).unwrap();
        match ServeFront::bind(serve, FrontConfig::default(), "not-an-addr") {
            Err(ServeError::Config(msg)) => assert!(msg.contains("bad socket address")),
            other => panic!("expected Config, got {:?}", other.map(|_| ())),
        }
    }
}
