//! Property tests for the streaming types' wire forms:
//! `decode(encode(x)) == x` (bit-exact floats, canonical bytes) for
//! every type the coordinator⇄worker protocol and the session snapshot
//! move, plus corrupted/truncated-byte fuzz asserting typed
//! [`DecodeError`]s — never panics.

use afd_relation::{AttrId, AttrSet, Fd, Relation, Schema, Value};
use afd_stream::wire::{CandidateState, ShardState, WorkerResponse, KIND_RESPONSE};
use afd_stream::{IncTable, RowDelta, ScoreDiff, SessionSnapshot, StreamScores, StreamSession};
use afd_wire::{decode_framed, encode_framed, Decode, DecodeError, Encode};
use proptest::prelude::*;

/// Random insert/delete trace over small (x, y) id spaces.
fn table_events() -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    prop::collection::vec((prop::bool::ANY, 0u32..6, 0u32..5), 1..80)
}

fn build_table(events: &[(bool, u32, u32)]) -> IncTable {
    let mut t = IncTable::new();
    let mut live: Vec<(u32, u32)> = Vec::new();
    for &(del, x, y) in events {
        if del && !live.is_empty() {
            let (x, y) = live.swap_remove((x as usize * 7 + y as usize) % live.len());
            t.delete(x, y);
        } else {
            t.insert(x, y);
            live.push((x, y));
        }
    }
    t
}

proptest! {
    #[test]
    fn inc_table_roundtrips_exactly_and_canonically(events in table_events()) {
        let t = build_table(&events);
        let bytes = t.encode_to_vec();
        let back = IncTable::decode_exact(&bytes).expect("table decodes");
        prop_assert_eq!(&back, &t);
        prop_assert!(back.scores().bits_eq(&t.scores()));
        // Canonical: equal tables encode to identical bytes despite
        // nondeterministic in-memory hash maps.
        prop_assert_eq!(back.encode_to_vec(), bytes);
    }

    #[test]
    fn stream_scores_and_diffs_roundtrip_bit_exactly(events in table_events()) {
        let t = build_table(&events);
        let scores = t.scores();
        let back = StreamScores::decode_exact(&scores.encode_to_vec()).expect("scores decode");
        prop_assert!(back.bits_eq(&scores));
        let diff = ScoreDiff { candidate: events.len(), before: StreamScores::exact(), after: scores };
        let back = ScoreDiff::decode_exact(&diff.encode_to_vec()).expect("diff decodes");
        prop_assert_eq!(back.candidate, diff.candidate);
        prop_assert!(back.before.bits_eq(&diff.before));
        prop_assert!(back.after.bits_eq(&diff.after));
    }

    #[test]
    fn row_deltas_roundtrip(
        inserts in prop::collection::vec(
            (prop::option::weighted(0.9, -3i64..3), prop::option::weighted(0.9, 0i64..4)),
            0..20,
        ),
        deletes in prop::collection::vec(0u32..512, 0..20),
    ) {
        let delta = RowDelta {
            inserts: inserts
                .iter()
                .map(|&(a, b)| vec![Value::from(a), Value::from(b)])
                .collect(),
            deletes: deletes.clone(),
        };
        let back = RowDelta::decode_exact(&delta.encode_to_vec()).expect("delta decodes");
        prop_assert_eq!(back, delta);
    }

    #[test]
    fn session_snapshots_roundtrip_framed(
        rows in prop::collection::vec((0i64..5, 0i64..4, 0i64..3), 0..40),
        n_shards in 1u32..5,
        compact_every in prop::option::weighted(0.5, 1u64..64),
    ) {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let rel = Relation::from_rows(
            schema,
            rows.iter().map(|&(a, b, c)| [Value::Int(a), Value::Int(b), Value::Int(c)]),
        )
        .unwrap();
        let snap = SessionSnapshot {
            rows: rel,
            shard_key: AttrSet::single(AttrId(0)),
            n_shards,
            subscriptions: vec![
                Fd::linear(AttrId(0), AttrId(1)),
                Fd::new(AttrSet::new([AttrId(0), AttrId(2)]), AttrSet::single(AttrId(1))).unwrap(),
            ],
            compact_every,
        };
        let back = SessionSnapshot::from_bytes(&snap.to_bytes().unwrap()).expect("snapshot decodes");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn corrupted_snapshot_bytes_are_typed_errors(
        rows in prop::collection::vec((0i64..5, 0i64..4), 1..20),
        byte_pick in 0usize..=usize::MAX,
        bit in 0u8..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = SessionSnapshot {
            rows: Relation::from_pairs(rows.iter().map(|&(a, b)| (a as u64, b as u64))),
            shard_key: AttrSet::empty(),
            n_shards: 1,
            subscriptions: vec![Fd::linear(AttrId(0), AttrId(1))],
            compact_every: None,
        };
        let bytes = snap.to_bytes().unwrap();
        // Any single bit flip: typed error (the frame checksum covers
        // header and payload).
        let mut corrupt = bytes.clone();
        let byte = byte_pick % corrupt.len();
        corrupt[byte] ^= 1 << bit;
        let err = SessionSnapshot::from_bytes(&corrupt).expect_err("corruption detected");
        let _ = err.to_string();
        // Any truncation: typed error.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let err = SessionSnapshot::from_bytes(&bytes[..cut]).expect_err("truncation detected");
            prop_assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. }
                        | DecodeError::BadLength { .. }
                        | DecodeError::BadMagic { .. }
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn worker_responses_with_live_session_state_roundtrip(events in table_events()) {
        // A response carrying real session-derived state (the shape the
        // coordinator actually decodes every delta).
        let mut session = StreamSession::new(Schema::new(["X", "Y"]).unwrap());
        let cid = session.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let rows: Vec<Vec<Value>> = events
            .iter()
            .map(|&(_, x, y)| vec![Value::Int(i64::from(x)), Value::Int(i64::from(y))])
            .collect();
        session.apply(&RowDelta::insert_only(rows)).unwrap();
        let resp = WorkerResponse::Applied(ShardState {
            n_live: session.relation().n_live() as u64,
            candidates: vec![CandidateState {
                table: session.table(cid).clone(),
                y_keys: (0..session.n_y_side_ids(cid))
                    .map(|id| session.y_side_values(cid, id as u32))
                    .collect(),
            }],
        });
        let frame = encode_framed(KIND_RESPONSE, &resp).unwrap();
        let back: WorkerResponse =
            decode_framed(KIND_RESPONSE, &frame).expect("framed response decodes");
        prop_assert_eq!(&back, &resp);
        // The decoded table still reads bit-identical scores.
        if let WorkerResponse::Applied(state) = back {
            prop_assert!(state.candidates[0]
                .table
                .scores()
                .bits_eq(&session.scores(cid)));
        }
    }
}
