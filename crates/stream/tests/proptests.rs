//! Property tests pinning the incremental engine to the batch kernels:
//! random insert/delete sequences must yield byte-identical PLIs,
//! contingency tables and (bit-exact) scores to a from-scratch rebuild
//! at every step, and stay within float-association distance of the
//! `afd-core` batch measures.

use afd_core::measure_by_name;
use afd_relation::{AttrId, AttrSet, Fd, Pli, Relation, Schema, Value};
use afd_stream::{plis_equal, tables_equal, RowDelta, ShardedSession, StreamScores, StreamSession};
use proptest::prelude::*;

/// One stream event: op selector, delete-target pick, and cell values
/// (None = NULL).
type Event = (u8, u32, (Option<i64>, Option<i64>, Option<i64>));

fn events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (
            0u8..4, // 0 => delete (when possible), else insert
            0u32..4096,
            (
                prop::option::weighted(0.85, 0i64..5),
                prop::option::weighted(0.85, 0i64..4),
                prop::option::weighted(0.85, 0i64..3),
            ),
        ),
        1..60,
    )
}

/// Mirror of live row ids maintained alongside the session.
struct Mirror {
    live: Vec<u32>,
    next_id: u32,
}

impl Mirror {
    fn new() -> Self {
        Mirror {
            live: Vec::new(),
            next_id: 0,
        }
    }

    /// Turns a chunk of events into a valid delta (deletes only name rows
    /// that existed before the delta and are not double-deleted).
    fn delta_from(&mut self, chunk: &[Event], arity: usize) -> RowDelta {
        let base = self.next_id;
        let mut delta = RowDelta::new();
        for &(sel, pick, (a, b, c)) in chunk {
            let deletable: Vec<u32> = self
                .live
                .iter()
                .copied()
                .filter(|&id| id < base && !delta.deletes.contains(&id))
                .collect();
            if sel == 0 && !deletable.is_empty() {
                let id = deletable[pick as usize % deletable.len()];
                delta.deletes.push(id);
                self.live.retain(|&l| l != id);
            } else {
                let row: Vec<Value> = [a, b, c][..arity].iter().map(|&v| Value::from(v)).collect();
                delta.inserts.push(row);
                self.live.push(self.next_id);
                self.next_id += 1;
            }
        }
        delta
    }

    /// Compaction renumbers survivors densely.
    fn after_compaction(&mut self, n_live: usize) {
        self.live = (0..n_live as u32).collect();
        self.next_id = n_live as u32;
    }
}

/// Asserts every pinning property of one candidate against the batch path.
fn check_against_batch(
    session: &StreamSession,
    cid: usize,
    snap: &Relation,
) -> Result<(), TestCaseError> {
    let fd = session.fd(cid).clone();
    let batch_ct = fd.contingency(snap);
    prop_assert!(
        tables_equal(&session.contingency(cid), &batch_ct),
        "contingency diverged for {:?}",
        fd
    );
    let batch_pli = Pli::from_relation(snap, fd.lhs());
    prop_assert!(
        plis_equal(&session.pli(cid), &batch_pli),
        "PLI diverged for {:?}",
        fd
    );
    // Bit-exact scores vs a from-scratch rebuild of the engine.
    let mut fresh = StreamSession::from_relation(snap.clone());
    let fcid = fresh.subscribe(fd.clone()).expect("valid fd");
    prop_assert!(
        session.scores(cid).bits_eq(&fresh.scores(fcid)),
        "scores not bit-identical to rebuild for {:?}: {:?} vs {:?}",
        fd,
        session.scores(cid),
        fresh.scores(fcid)
    );
    // Association-tolerance agreement with the batch measures.
    for name in StreamScores::NAMES {
        let measure = measure_by_name(name).expect("known measure");
        let want = measure.score_contingency(&batch_ct);
        let got = session.scores(cid).get(name).expect("known name");
        prop_assert!(
            (want - got).abs() < 1e-9,
            "{name} differs from afd-core: stream {got} vs batch {want}"
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn linear_candidate_tracks_batch_at_every_step(events in events()) {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let mut session = StreamSession::new(schema);
        let cid = session.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let mut mirror = Mirror::new();
        for chunk in events.chunks(3) {
            let delta = mirror.delta_from(chunk, 2);
            session.apply(&delta).unwrap();
            let snap = session.relation().snapshot();
            check_against_batch(&session, cid, &snap)?;
        }
    }

    #[test]
    fn multi_attribute_candidate_tracks_batch(events in events()) {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let mut session = StreamSession::new(schema);
        let fd = Fd::new(
            AttrSet::new([AttrId(0), AttrId(1)]),
            AttrSet::single(AttrId(2)),
        )
        .unwrap();
        let reverse = Fd::new(
            AttrSet::single(AttrId(2)),
            AttrSet::new([AttrId(0), AttrId(1)]),
        )
        .unwrap();
        let session_cids = vec![
            session.subscribe(fd).unwrap(),
            session.subscribe(reverse).unwrap(),
        ];
        let mut mirror = Mirror::new();
        for chunk in events.chunks(4) {
            let delta = mirror.delta_from(chunk, 3);
            session.apply(&delta).unwrap();
            let snap = session.relation().snapshot();
            for &cid in &session_cids {
                check_against_batch(&session, cid, &snap)?;
            }
        }
    }

    #[test]
    fn compaction_preserves_state_under_churn(events in events()) {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let mut session = StreamSession::new(schema);
        let cid = session.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let mut mirror = Mirror::new();
        for (step, chunk) in events.chunks(3).enumerate() {
            let delta = mirror.delta_from(chunk, 2);
            session.apply(&delta).unwrap();
            if step % 3 == 2 {
                let before = session.scores(cid);
                // compact() itself asserts PLI/table/score equivalence
                // with the batch kernels and errors on divergence.
                let report = session.compact().unwrap();
                prop_assert_eq!(report.n_live, session.relation().n_live());
                prop_assert_eq!(session.relation().n_slots(), report.n_live);
                prop_assert!(session.scores(cid).bits_eq(&before));
                mirror.after_compaction(report.n_live);
            }
        }
        let snap = session.relation().snapshot();
        check_against_batch(&session, cid, &snap)?;
    }

    #[test]
    fn sharded_sessions_match_single_session_and_batch_bit_exactly(events in events()) {
        // The sharding pinning property: for every shard count, a
        // ShardedSession's merged score reads are bit-identical to a
        // single StreamSession over the same delta history, which in turn
        // is pinned (above and here) to the batch kernels — all 11 fast
        // measures, random insert/delete sequences, shard key = {A}.
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let key = AttrSet::single(AttrId(0));
        let fds = [
            Fd::linear(AttrId(0), AttrId(1)),
            Fd::linear(AttrId(0), AttrId(2)),
            Fd::new(
                AttrSet::new([AttrId(0), AttrId(1)]),
                AttrSet::single(AttrId(2)),
            )
            .unwrap(),
        ];
        let mut single = StreamSession::new(schema.clone());
        let single_cids: Vec<usize> = fds
            .iter()
            .map(|fd| single.subscribe(fd.clone()).unwrap())
            .collect();
        let mut sharded: Vec<ShardedSession> = [1usize, 2, 3, 7]
            .iter()
            .map(|&n| ShardedSession::new(schema.clone(), key.clone(), n).unwrap())
            .collect();
        let sharded_cids: Vec<Vec<usize>> = sharded
            .iter_mut()
            .map(|s| fds.iter().map(|fd| s.subscribe(fd.clone()).unwrap()).collect())
            .collect();
        let mut mirror = Mirror::new();
        for chunk in events.chunks(4) {
            let delta = mirror.delta_from(chunk, 3);
            single.apply(&delta).unwrap();
            for s in &mut sharded {
                s.apply(&delta).unwrap();
            }
            let snap = single.relation().snapshot();
            for (ci, &scid) in single_cids.iter().enumerate() {
                // Single session vs the batch measures.
                let batch_ct = fds[ci].contingency(&snap);
                for name in StreamScores::NAMES {
                    let want = measure_by_name(name).unwrap().score_contingency(&batch_ct);
                    let got = single.scores(scid).get(name).unwrap();
                    prop_assert!(
                        (want - got).abs() < 1e-9,
                        "{name} differs from afd-core for {:?}: {got} vs {want}",
                        fds[ci]
                    );
                }
                // Every shard count vs the single session, bit-exactly.
                for (s, cids) in sharded.iter().zip(&sharded_cids) {
                    prop_assert!(
                        s.scores(cids[ci]).bits_eq(&single.scores(scid)),
                        "ShardedSession({}) diverged from single session for {:?}: {:?} vs {:?}",
                        s.n_shards(),
                        fds[ci],
                        s.scores(cids[ci]),
                        single.scores(scid)
                    );
                }
            }
        }
        // Per-shard compaction verification passes everywhere and keeps
        // the merged reads bit-identical.
        for s in &mut sharded {
            let before: Vec<StreamScores> =
                (0..fds.len()).map(|ci| s.scores(ci)).collect();
            s.compact().unwrap();
            for (ci, b) in before.iter().enumerate() {
                prop_assert!(s.scores(ci).bits_eq(b));
            }
        }
    }

    #[test]
    fn late_subscription_matches_eager_tracking(events in events()) {
        // Subscribing after arbitrary churn must agree with a session
        // that tracked the candidate from the start.
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fd = Fd::linear(AttrId(1), AttrId(0));
        let mut eager = StreamSession::new(schema.clone());
        let ecid = eager.subscribe(fd.clone()).unwrap();
        let mut lazy = StreamSession::new(schema);
        let mut mirror = Mirror::new();
        for chunk in events.chunks(3) {
            let base_next = mirror.next_id;
            let base_live = mirror.live.clone();
            let delta = mirror.delta_from(chunk, 2);
            // Replay the identical delta on the lazy session.
            mirror.next_id = base_next;
            mirror.live = base_live;
            let delta2 = mirror.delta_from(chunk, 2);
            prop_assert_eq!(delta.deletes.clone(), delta2.deletes.clone());
            eager.apply(&delta).unwrap();
            lazy.apply(&delta2).unwrap();
        }
        let lcid = lazy.subscribe(fd).unwrap();
        prop_assert!(lazy.scores(lcid).bits_eq(&eager.scores(ecid)));
    }
}
