//! Fault-injection property tests for the self-healing shard fabric:
//! for N ∈ {1, 2, 4} shards, **any single fault at any protocol step**
//! (kill / truncate / garbage / stall, site and victim shard derived
//! deterministically from a seed via [`FaultPlan`]) must recover
//! bit-identically to a fault-free unsharded run — same merged scores
//! (`f64::to_bits`), same live rows in the same global order.

use afd_relation::{AttrId, AttrSet, Fd, Schema, Value};
use afd_stream::{ChaosShard, FaultPlan, RecoveryConfig, RowDelta, ShardedSession, StreamSession};
use proptest::prelude::*;

/// One stream event: op selector, delete-target pick, and cell values
/// (None = NULL) — the same shape as the crate's main proptests.
type Event = (u8, u32, (Option<i64>, Option<i64>, Option<i64>));

fn events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (
            0u8..4, // 0 => delete (when possible), else insert
            0u32..4096,
            (
                prop::option::weighted(0.85, 0i64..5),
                prop::option::weighted(0.85, 0i64..4),
                prop::option::weighted(0.85, 0i64..3),
            ),
        ),
        4..48,
    )
}

/// Mirror of live row ids maintained alongside the sessions.
struct Mirror {
    live: Vec<u32>,
    next_id: u32,
}

impl Mirror {
    fn new() -> Self {
        Mirror {
            live: Vec::new(),
            next_id: 0,
        }
    }

    fn delta_from(&mut self, chunk: &[Event]) -> RowDelta {
        let base = self.next_id;
        let mut delta = RowDelta::new();
        for &(sel, pick, (a, b, c)) in chunk {
            let deletable: Vec<u32> = self
                .live
                .iter()
                .copied()
                .filter(|&id| id < base && !delta.deletes.contains(&id))
                .collect();
            if sel == 0 && !deletable.is_empty() {
                let id = deletable[pick as usize % deletable.len()];
                delta.deletes.push(id);
                self.live.retain(|&l| l != id);
            } else {
                let row: Vec<Value> = [a, b, c].iter().map(|&v| Value::from(v)).collect();
                delta.inserts.push(row);
                self.live.push(self.next_id);
                self.next_id += 1;
            }
        }
        delta
    }
}

/// Builds an N-shard chaos session with `plan`'s fault armed on its
/// victim shard, tight checkpoints and no backoff (tests should not
/// sleep).
fn chaos_session(
    schema: &Schema,
    n_shards: u32,
    plan: &FaultPlan,
    checkpoint_every: u64,
) -> ShardedSession<ChaosShard> {
    let backends: Vec<ChaosShard> = (0..n_shards)
        .map(|s| ChaosShard::new(schema.clone(), (s == plan.shard).then_some(plan.fault)))
        .collect();
    ShardedSession::with_backends(schema.clone(), AttrSet::single(AttrId(0)), backends)
        .expect("valid chaos topology")
        .with_recovery(RecoveryConfig {
            checkpoint_every,
            retry_budget: 3,
            backoff_ms: 0,
            request_timeout_ms: 1_000,
        })
        .expect("valid recovery config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_fault_recovers_bit_identically(
        seed in 0u64..u64::MAX,
        checkpoint_every in 1u64..5,
        events in events(),
    ) {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let fds = [
            Fd::linear(AttrId(0), AttrId(1)),
            Fd::linear(AttrId(0), AttrId(2)),
        ];
        // The fault-free reference: one unsharded session.
        let mut single = StreamSession::new(schema.clone());
        let single_cids: Vec<usize> = fds
            .iter()
            .map(|fd| single.subscribe(fd.clone()).unwrap())
            .collect();
        let mut mirror = Mirror::new();
        let deltas: Vec<RowDelta> = {
            let mut out = Vec::new();
            for chunk in events.chunks(4) {
                out.push(mirror.delta_from(chunk));
            }
            out
        };
        for d in &deltas {
            single.apply(d).unwrap();
        }
        for n_shards in [1u32, 2, 4] {
            // Enough sites to land anywhere in the interaction: subscribe
            // + one apply per delta + checkpoint snapshots.
            let max_site = 2 * (deltas.len() as u64 + fds.len() as u64) + 4;
            let plan = FaultPlan::single(
                seed.wrapping_add(u64::from(n_shards)),
                n_shards,
                max_site,
                25,
            );
            let mut sharded = chaos_session(&schema, n_shards, &plan, checkpoint_every);
            let sharded_cids: Vec<usize> = fds
                .iter()
                .map(|fd| sharded.subscribe(fd.clone()).unwrap())
                .collect();
            for d in &deltas {
                sharded.apply(d).unwrap();
            }
            for (ci, &scid) in single_cids.iter().enumerate() {
                prop_assert!(
                    sharded.scores(sharded_cids[ci]).bits_eq(&single.scores(scid)),
                    "plan {plan:?} over {n_shards} shards diverged for {:?}",
                    fds[ci]
                );
            }
            // Live rows and their global order survive the fault too.
            let snap = sharded.snapshot().unwrap();
            let want = single.relation().snapshot();
            prop_assert_eq!(snap.n_rows(), want.n_rows(), "plan {:?}", plan);
            for r in 0..want.n_rows() {
                prop_assert_eq!(snap.row(r), want.row(r), "row {} under plan {:?}", r, plan);
            }
            // If the fault fired, it was recovered (not silently skipped);
            // if the interaction was too short for the site, nothing
            // respawned — either way the state above already matched.
            let report = sharded.recovery_report();
            prop_assert!(
                report.total_respawns() >= 1 || plan.fault.site > 1,
                "a site-1 fault must always fire: {plan:?} {report:?}"
            );
        }
    }

    #[test]
    fn any_single_fault_mid_compaction_recovers(
        seed in 0u64..u64::MAX,
        events in events(),
    ) {
        // Same property with periodic compaction in the script: recovery
        // restores pre-compaction state and retries the compact. The
        // delta script is generated compaction-aware (global ids
        // renumber densely every third step), identically for every
        // shard count.
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let deltas: Vec<RowDelta> = {
            let mut mirror = Mirror::new();
            events
                .chunks(4)
                .enumerate()
                .map(|(step, chunk)| {
                    let d = mirror.delta_from(chunk);
                    if step % 3 == 2 {
                        let n_live = mirror.live.len() as u32;
                        mirror.live = (0..n_live).collect();
                        mirror.next_id = n_live;
                    }
                    d
                })
                .collect()
        };
        for n_shards in [1u32, 2] {
            let max_site = 3 * deltas.len() as u64 + 6;
            let plan = FaultPlan::single(
                seed.wrapping_mul(31).wrapping_add(u64::from(n_shards)),
                n_shards,
                max_site,
                25,
            );
            let mut sharded = chaos_session(&schema, n_shards, &plan, 2);
            let cid = sharded.subscribe(fd.clone()).unwrap();
            let mut single = StreamSession::new(schema.clone());
            let scid = single.subscribe(fd.clone()).unwrap();
            for (step, d) in deltas.iter().enumerate() {
                sharded.apply(d).unwrap();
                single.apply(d).unwrap();
                if step % 3 == 2 {
                    sharded.compact().unwrap();
                    single.compact().unwrap();
                }
            }
            prop_assert!(
                sharded.scores(cid).bits_eq(&single.scores(scid)),
                "plan {plan:?} over {n_shards} shards diverged post-compaction"
            );
        }
    }
}
