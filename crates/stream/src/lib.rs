//! # afd-stream
//!
//! Incremental AFD engine: delta-maintained PLIs, contingency tables and
//! measure scores for streaming relations.
//!
//! The batch pipeline (`afd-relation` kernels + `afd-core` measures)
//! answers "how strong is `X -> Y` on this snapshot?" in time linear in
//! the relation. Under continuously-changing traffic that is the wrong
//! cost model: a delta of `k` rows should cost `O(k)`, not `O(N)`. This
//! crate provides exactly that:
//!
//! * [`IncrementalRelation`] — an append-only row log with tombstone
//!   deletes; dictionary codes are stable for the life of the log, which
//!   is what makes per-row group membership patchable.
//! * [`StreamSession`] — subscribe candidate FDs, then
//!   [`StreamSession::apply`] a [`RowDelta`] and get back a
//!   [`ScoreDiff`] per candidate. Each tracked candidate delta-maintains
//!   its dense side encodings (the incremental PLI membership), an
//!   [`IncTable`] of joint counts, and the eleven efficiently computable
//!   measure scores ([`StreamScores`]). Only touched groups are
//!   re-aggregated; the Shannon entropy terms are patched group-by-group
//!   through count-value histograms rather than recomputed.
//! * [`StreamSession::compact`] — periodically rebuilds everything
//!   through the batch kernels and **asserts equivalence** (exact for
//!   PLIs and contingency tables, bit-exact for scores), so drift would
//!   surface as [`StreamError::Diverged`] instead of silently serving
//!   stale or wrong scores.
//! * [`ShardedSession`] — the same API over N hash-partitioned shards: a
//!   [`DeltaRouter`] splits each delta by shard-key value (the key must
//!   be contained in every tracked LHS, so X-groups stay shard-local),
//!   applies fan out across `afd-parallel` scoped threads, and score
//!   reads merge the per-shard [`IncTable`]s via [`IncTable::merge`] —
//!   bit-identical to an unsharded session over the same history.
//!
//! Score reads are bitwise deterministic: every floating-point reduction
//! iterates ordered count histograms, so a session that ingested a
//! million deltas and a fresh session built from the final snapshot
//! return bit-identical `f64`s — the property the crate's proptests pin.
//!
//! ## Architecture & performance: the wire and the process topology
//!
//! [`ShardedSession`] is generic over a [`ShardBackend`] — *where* a
//! shard lives is a plug point:
//!
//! * [`InProcShard`] (default): a [`StreamSession`] in the coordinator's
//!   address space, zero transport cost.
//! * [`ProcessShard`]: an `afd shard-worker` **child process** (spawned
//!   via [`WorkerCommand`]) speaking the `afd-wire` protocol over its
//!   stdin/stdout. Every frame is length-prefixed, versioned and
//!   FNV-checksummed; each applied delta slice comes back as the
//!   worker's full per-candidate state ([`wire::ShardState`]: the
//!   [`IncTable`] merge inputs plus value-level Y side keys), which the
//!   coordinator decodes and merges through the same
//!   [`IncTable::merge`] as in-process shards. All maintained
//!   aggregates are integers, so the codec round-trip is exact and the
//!   merged reads are **bit-identical** across backends — pinned by
//!   process-spawning proptests for N ∈ {1, 2, 4} (`crates/cli`
//!   integration tests).
//!
//! ## Fault model: supervised recovery, deadlines, fault injection
//!
//! Failure is typed, never silent — and for process workers it is
//! **recovered**, not just reported. The coordinator keeps, per shard, a
//! framed [`SessionSnapshot`] checkpoint (refreshed every
//! [`RecoveryConfig::checkpoint_every`] applies) plus the encoded
//! [`RowDelta`] log since it. When a request fails with a structured
//! [`TransportError`] (spawn / write / read / timeout / decode, plus the
//! shard index and the worker's last stderr lines), the supervisor
//! respawns the worker, restores the checkpoint, replays the log and
//! retries the in-flight request — both wire forms are canonical, so the
//! recovered state is bit-identical by construction. Every request
//! carries a deadline ([`RecoveryConfig::request_timeout_ms`], enforced
//! by a per-worker reader thread), so a *hung* worker becomes a timeout
//! feeding the same path; [`ShardedSession::recovery_report`] counts
//! respawns and replayed deltas. Only after
//! [`RecoveryConfig::retry_budget`] failed attempts (with exponential
//! backoff) — or for backends that cannot respawn — does the session
//! *poison* ([`StreamError::Poisoned`]): score reads keep serving the
//! last consistent state, every further mutation is refused.
//! [`ShardedSession::shutdown`] ends a session gracefully and reports
//! stragglers.
//!
//! The fault paths are themselves deterministic and testable: a seeded
//! [`FaultPlan`] picks a shard, a protocol step and a fault kind
//! ([`WorkerFault`]: kill / truncate a frame / emit garbage / stall past
//! the deadline), interpreted either by the in-process [`ChaosShard`]
//! test backend or by real workers via the [`AFD_WORKER_FAULTS_ENV`]
//! environment hook — proptests pin that any single fault at any step
//! recovers bit-identically to a fault-free run.
//!
//! Whole sessions persist as framed [`SessionSnapshot`]s (live rows in
//! global order, columnar; shard topology; subscriptions) — restoring is
//! equivalent to resuming right after a compaction, with bit-identical
//! scores.
//!
//! Coordinator snapshots are **code-level**: [`ShardedSession::snapshot`]
//! unifies the shard dictionaries once (O(Σ distinct values)) and copies
//! one remapped `u32` code per cell — O(rows) code copies like
//! `Relation::filter_rows`, no per-row `Value` round-trips.
//! `cargo run --release -p afd-bench --example record_wire` records the
//! codec throughput and the process-backend apply overhead in
//! `BENCH_wire.json`.
//!
//! ```
//! use afd_relation::{AttrId, Fd, Schema, Value};
//! use afd_stream::{RowDelta, StreamSession};
//!
//! let mut session = StreamSession::new(Schema::new(["zip", "city"]).unwrap());
//! let zip_city = session.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
//! let rows = [(94110, 1), (94110, 1), (10001, 2)];
//! session.apply(&RowDelta::insert_only(rows.iter().map(|&(z, c)| {
//!     vec![Value::Int(z), Value::Int(c)]
//! }))).unwrap();
//! assert_eq!(session.scores(zip_city).g3, 1.0); // exact so far
//! let diffs = session.apply(&RowDelta::insert_only([
//!     vec![Value::Int(94110), Value::Int(9)], // a typo arrives
//! ])).unwrap();
//! assert!(diffs[zip_city].after.g3 < 1.0);
//! ```

pub mod backend;
pub mod delta;
pub mod fault;
pub mod recovery;
pub mod session;
pub mod shard;
pub mod table;
pub mod wire;
pub mod worker;

pub use backend::{
    AnyShard, InProcShard, ProcessShard, RemoteShard, ShardBackend, TcpShard, WorkerCommand,
    DEFAULT_REQUEST_TIMEOUT,
};
pub use delta::{ChurnPlanner, RowDelta, RowId, StreamError, TransportError, TransportErrorKind};
pub use fault::{ChaosShard, FaultPlan, WorkerFault, WorkerFaultKind, AFD_WORKER_FAULTS_ENV};
pub use recovery::{RecoveryConfig, RecoveryReport, ShardRecoveryStats, ShutdownReport};
pub use session::{
    plis_equal, tables_equal, CompactionReport, IncrementalRelation, ScoreDiff, StreamSession,
};
pub use shard::{DeltaRouter, ShardedSession};
pub use table::{IncTable, StreamScores};
pub use wire::{SessionSnapshot, SnapshotStats};
pub use worker::{run_worker, run_worker_listener, run_worker_with_fault};
