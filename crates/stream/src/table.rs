//! Delta-maintained joint-count state and deterministic score reads.
//!
//! [`IncTable`] is the streaming counterpart of
//! [`afd_relation::ContingencyTable`]: the same joint counts `n_ij`, row
//! sums `a_i`, column sums `b_j` and `N`, but mutable one tuple at a time
//! ([`IncTable::insert`] / [`IncTable::delete`], O(1) amortised each, plus
//! an O(distinct-Y-of-group) max recomputation when a delete lowers a
//! group's majority count).
//!
//! # Why score reads are bitwise deterministic
//!
//! Every maintained aggregate is an **integer** (exact under insert and
//! delete), and every floating-point reduction in [`IncTable::scores`]
//! iterates a `BTreeMap` *histogram* keyed by count value — never a group
//! id, never a hash order. Two `IncTable`s holding the same multiset of
//! counts therefore produce bit-identical `f64` scores, regardless of the
//! insert/delete interleaving that built them. This is what lets the
//! proptests pin `incremental == from-scratch rebuild` at the bit level,
//! and lets compaction assert equivalence instead of "approximately
//! equal".
//!
//! The per-group Shannon terms are thereby patched group-by-group: a
//! touched group moves its old count out of the histogram and its new
//! count in; untouched groups' contributions are never recomputed.

use std::collections::{BTreeMap, HashMap};

use afd_wire::{Decode, DecodeError, Encode, Reader};

/// Per-X-group state: total, sum of squared cell counts, majority count,
/// and the nonzero cells themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct XGroup {
    /// `a_i = Σ_j n_ij`.
    total: u64,
    /// `Σ_j n_ij²`.
    sq: u64,
    /// `max_j n_ij` (the g3 majority).
    max: u64,
    /// Nonzero cells `y -> n_ij`.
    ys: HashMap<u32, u64>,
}

/// Count-value histogram: `count -> how many groups/cells hold it`.
///
/// Distinct positive integers summing to `N` number at most `O(√N)`, so
/// these stay tiny even for large relations — score reads cost
/// `O(distinct count values)`, not `O(K)`.
type CountHist = BTreeMap<u64, u64>;

fn hist_inc(h: &mut CountHist, v: u64) {
    if v > 0 {
        *h.entry(v).or_insert(0) += 1;
    }
}

fn hist_dec(h: &mut CountHist, v: u64) {
    if v == 0 {
        return;
    }
    let m = h.get_mut(&v).expect("histogram holds every live count");
    *m -= 1;
    if *m == 0 {
        h.remove(&v);
    }
}

/// `Σ v·log2(v) · mult` over a histogram, in ascending-key order.
fn hist_entropy_sum(h: &CountHist) -> f64 {
    let mut s = 0.0;
    for (&v, &mult) in h {
        if v > 1 {
            s += mult as f64 * (v as f64) * (v as f64).log2();
        }
    }
    s
}

/// Incrementally maintained joint counts of one FD candidate `X -> Y`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncTable {
    /// Tuples currently counted (`N`).
    n: u64,
    /// X-groups by dense side id.
    groups: HashMap<u32, XGroup>,
    /// Column sums `b_j` by dense side id.
    col_totals: HashMap<u32, u64>,
    /// `|dom(XY)|`: number of nonzero cells.
    nonzero_cells: u64,
    /// `Σ_i max_j n_ij` (the g3 numerator).
    sum_row_max: u64,
    /// `Σ_i a_i` over groups with ≥ 2 distinct Y values (the g2 mass).
    violating_mass: u64,
    /// `Σ_i a_i²`, `Σ_j b_j²`, `Σ_ij n_ij²` — exact integers.
    sum_sq_rows: u64,
    sum_sq_cols: u64,
    sum_sq_cells: u64,
    /// Histograms of `a_i` / `b_j` / `n_ij` values (Shannon terms).
    hist_rows: CountHist,
    hist_cols: CountHist,
    hist_cells: CountHist,
    /// Histogram of `(a_i, Σ_j n_ij²)` group shapes (the pdep term).
    hist_row_shape: BTreeMap<(u64, u64), u64>,
}

impl IncTable {
    /// An empty table.
    pub fn new() -> Self {
        IncTable::default()
    }

    /// Total tuple count `N`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// `K_X = |dom(X)|`.
    pub fn n_x(&self) -> usize {
        self.groups.len()
    }

    /// `K_Y = |dom(Y)|`.
    pub fn n_y(&self) -> usize {
        self.col_totals.len()
    }

    /// `|dom(XY)|`: nonzero cells.
    pub fn nonzero_cells(&self) -> u64 {
        self.nonzero_cells
    }

    /// `Σ_i max_j n_ij`.
    pub fn sum_row_max(&self) -> u64 {
        self.sum_row_max
    }

    /// The largest Y side id this table references (cells and column
    /// totals) — what a coordinator bounds-checks a decoded shard table
    /// against before handing it a Y remap slice.
    pub fn max_y_id(&self) -> Option<u32> {
        let cols = self.col_totals.keys().copied().max();
        let cells = self
            .groups
            .values()
            .flat_map(|g| g.ys.keys().copied())
            .max();
        cols.into_iter().chain(cells).max()
    }

    /// `true` iff the (NULL-filtered) FD holds exactly: every X-group
    /// carries a single Y value. Vacuously true when empty.
    pub fn is_exact_fd(&self) -> bool {
        self.nonzero_cells == self.groups.len() as u64
    }

    /// Counts one tuple `(x, y)` in.
    pub fn insert(&mut self, x: u32, y: u32) {
        self.n += 1;
        // Column side.
        let b = self.col_totals.entry(y).or_insert(0);
        let old_b = *b;
        *b += 1;
        hist_dec(&mut self.hist_cols, old_b);
        hist_inc(&mut self.hist_cols, old_b + 1);
        self.sum_sq_cols += 2 * old_b + 1;
        // Group side.
        let g = self.groups.entry(x).or_default();
        let old_a = g.total;
        let old_sq = g.sq;
        let old_distinct = g.ys.len();
        let c = g.ys.entry(y).or_insert(0);
        let old_c = *c;
        *c += 1;
        g.total += 1;
        g.sq += 2 * old_c + 1;
        if old_c + 1 > g.max {
            self.sum_row_max += old_c + 1 - g.max;
            g.max = old_c + 1;
        }
        let (new_total, new_sq, new_distinct) = (g.total, g.sq, g.ys.len());
        if old_c == 0 {
            self.nonzero_cells += 1;
        }
        self.sum_sq_cells += 2 * old_c + 1;
        self.sum_sq_rows += 2 * old_a + 1;
        hist_dec(&mut self.hist_cells, old_c);
        hist_inc(&mut self.hist_cells, old_c + 1);
        hist_dec(&mut self.hist_rows, old_a);
        hist_inc(&mut self.hist_rows, old_a + 1);
        self.shape_move((old_a, old_sq), (new_total, new_sq));
        if old_distinct >= 2 {
            self.violating_mass -= old_a;
        }
        if new_distinct >= 2 {
            self.violating_mass += new_total;
        }
    }

    /// Counts one tuple `(x, y)` out.
    ///
    /// # Panics
    /// Panics if `(x, y)` is not currently counted (engine bug — callers
    /// translate row ids to side ids, so a miss means corrupted state).
    pub fn delete(&mut self, x: u32, y: u32) {
        self.n -= 1;
        // Column side.
        let b = self
            .col_totals
            .get_mut(&y)
            .expect("delete of uncounted y id");
        let old_b = *b;
        *b -= 1;
        if *b == 0 {
            self.col_totals.remove(&y);
        }
        hist_dec(&mut self.hist_cols, old_b);
        hist_inc(&mut self.hist_cols, old_b - 1);
        self.sum_sq_cols -= 2 * old_b - 1;
        // Group side.
        let g = self.groups.get_mut(&x).expect("delete of uncounted x id");
        let old_a = g.total;
        let old_sq = g.sq;
        let old_distinct = g.ys.len();
        let c = g.ys.get_mut(&y).expect("delete of uncounted cell");
        let old_c = *c;
        *c -= 1;
        if *c == 0 {
            g.ys.remove(&y);
            self.nonzero_cells -= 1;
        }
        g.total -= 1;
        g.sq -= 2 * old_c - 1;
        if old_c == g.max {
            // The decremented cell was (one of) the majority: re-derive
            // the max over this group's remaining cells only.
            let new_max = g.ys.values().copied().max().unwrap_or(0);
            self.sum_row_max -= g.max - new_max;
            g.max = new_max;
        }
        let (new_total, new_sq, new_distinct) = (g.total, g.sq, g.ys.len());
        if new_total == 0 {
            self.groups.remove(&x);
        }
        self.sum_sq_cells -= 2 * old_c - 1;
        self.sum_sq_rows -= 2 * old_a - 1;
        hist_dec(&mut self.hist_cells, old_c);
        hist_inc(&mut self.hist_cells, old_c - 1);
        hist_dec(&mut self.hist_rows, old_a);
        hist_inc(&mut self.hist_rows, old_a - 1);
        self.shape_move((old_a, old_sq), (new_total, new_sq));
        if old_distinct >= 2 {
            self.violating_mass -= old_a;
        }
        if new_distinct >= 2 {
            self.violating_mass += new_total;
        }
    }

    fn shape_move(&mut self, from: (u64, u64), to: (u64, u64)) {
        if from.0 > 0 {
            let m = self
                .hist_row_shape
                .get_mut(&from)
                .expect("shape histogram holds every live group");
            *m -= 1;
            if *m == 0 {
                self.hist_row_shape.remove(&from);
            }
        }
        if to.0 > 0 {
            *self.hist_row_shape.entry(to).or_insert(0) += 1;
        }
    }

    /// Merges shard tables into one table covering their union.
    ///
    /// Each part comes with a *Y-side remap* `local id -> global id`
    /// (length ≥ the part's largest live Y id + 1) identifying which local
    /// Y ids across shards denote the same Y value. The caller guarantees
    /// the parts' **X-group key spaces are value-disjoint** (rows were
    /// hash-partitioned by a key the X side determines — see
    /// `DeltaRouter`); under that contract every X-side aggregate is a
    /// plain sum, while the Y margins (`b_j`, their squares and histogram)
    /// are re-derived from the remapped, summed column totals.
    ///
    /// The merge is **order-independent by design**: all maintained
    /// aggregates are integers or count-value histograms, so any part
    /// order yields bit-identical [`IncTable::scores`] — and those scores
    /// are bit-identical to a single unsharded table over the same rows.
    pub fn merge<'a>(parts: impl IntoIterator<Item = (&'a IncTable, &'a [u32])>) -> IncTable {
        let mut out = IncTable::new();
        let mut next_x: u32 = 0;
        // Global column totals, summed across shards by global Y id.
        let mut cols: BTreeMap<u32, u64> = BTreeMap::new();
        for (t, y_map) in parts {
            out.n += t.n;
            out.nonzero_cells += t.nonzero_cells;
            out.sum_row_max += t.sum_row_max;
            out.violating_mass += t.violating_mass;
            out.sum_sq_rows += t.sum_sq_rows;
            out.sum_sq_cells += t.sum_sq_cells;
            for (&v, &mult) in &t.hist_rows {
                *out.hist_rows.entry(v).or_insert(0) += mult;
            }
            for (&v, &mult) in &t.hist_cells {
                *out.hist_cells.entry(v).or_insert(0) += mult;
            }
            for (&shape, &mult) in &t.hist_row_shape {
                *out.hist_row_shape.entry(shape).or_insert(0) += mult;
            }
            // X groups are disjoint by contract; renumber them densely
            // (in sorted local-id order so the merged map is
            // deterministic) and remap their cell keys to global Y ids.
            let mut xs: Vec<u32> = t.groups.keys().copied().collect();
            xs.sort_unstable();
            for x in xs {
                let g = &t.groups[&x];
                out.groups.insert(
                    next_x,
                    XGroup {
                        total: g.total,
                        sq: g.sq,
                        max: g.max,
                        ys: g.ys.iter().map(|(&y, &c)| (y_map[y as usize], c)).collect(),
                    },
                );
                next_x += 1;
            }
            for (&y, &b) in &t.col_totals {
                *cols.entry(y_map[y as usize]).or_insert(0) += b;
            }
        }
        for (&y, &b) in &cols {
            out.col_totals.insert(y, b);
            out.sum_sq_cols += b * b;
            hist_inc(&mut out.hist_cols, b);
        }
        out
    }

    /// The current scores of the incremental measure family.
    ///
    /// Applies the paper's conventions exactly like
    /// [`afd_core::Measure::score_contingency`]: empty or exactly
    /// satisfied tables score 1 across the board, everything else is
    /// clamped into `[0, 1]`.
    ///
    /// [`afd_core::Measure::score_contingency`]:
    /// https://docs.rs/afd-core (Measure trait)
    pub fn scores(&self) -> StreamScores {
        ScoreAggregates {
            n: self.n,
            kx: self.groups.len() as u64,
            nonzero_cells: self.nonzero_cells,
            sum_row_max: self.sum_row_max,
            violating_mass: self.violating_mass,
            sum_sq_rows: self.sum_sq_rows,
            sum_sq_cols: self.sum_sq_cols,
            sum_sq_cells: self.sum_sq_cells,
            hist_rows: &self.hist_rows,
            hist_cols: &self.hist_cols,
            hist_cells: &self.hist_cells,
            hist_row_shape: &self.hist_row_shape,
        }
        .scores()
    }

    /// The scores of the *union* of shard tables — bit-identical to
    /// `IncTable::merge(parts).scores()` (same contract: X-group key
    /// spaces value-disjoint, remaps to a shared Y-id space) but without
    /// materialising the merged group/cell maps, which scores never
    /// read. Cost is O(histograms + column totals), not
    /// O(groups + cells) — the coordinator's per-apply read path.
    pub fn merged_scores<'a>(
        parts: impl IntoIterator<Item = (&'a IncTable, &'a [u32])>,
    ) -> StreamScores {
        let mut n = 0u64;
        let mut kx = 0u64;
        let mut nonzero_cells = 0u64;
        let mut sum_row_max = 0u64;
        let mut violating_mass = 0u64;
        let mut sum_sq_rows = 0u64;
        let mut sum_sq_cells = 0u64;
        let mut hist_rows = CountHist::new();
        let mut hist_cells = CountHist::new();
        let mut hist_row_shape: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut cols: BTreeMap<u32, u64> = BTreeMap::new();
        for (t, y_map) in parts {
            n += t.n;
            kx += t.groups.len() as u64;
            nonzero_cells += t.nonzero_cells;
            sum_row_max += t.sum_row_max;
            violating_mass += t.violating_mass;
            sum_sq_rows += t.sum_sq_rows;
            sum_sq_cells += t.sum_sq_cells;
            for (&v, &mult) in &t.hist_rows {
                *hist_rows.entry(v).or_insert(0) += mult;
            }
            for (&v, &mult) in &t.hist_cells {
                *hist_cells.entry(v).or_insert(0) += mult;
            }
            for (&shape, &mult) in &t.hist_row_shape {
                *hist_row_shape.entry(shape).or_insert(0) += mult;
            }
            for (&y, &b) in &t.col_totals {
                *cols.entry(y_map[y as usize]).or_insert(0) += b;
            }
        }
        let mut sum_sq_cols = 0u64;
        let mut hist_cols = CountHist::new();
        for &b in cols.values() {
            sum_sq_cols += b * b;
            hist_inc(&mut hist_cols, b);
        }
        ScoreAggregates {
            n,
            kx,
            nonzero_cells,
            sum_row_max,
            violating_mass,
            sum_sq_rows,
            sum_sq_cols,
            sum_sq_cells,
            hist_rows: &hist_rows,
            hist_cols: &hist_cols,
            hist_cells: &hist_cells,
            hist_row_shape: &hist_row_shape,
        }
        .scores()
    }
}

/// The exact inputs a score read consumes — borrowed from one table's
/// fields ([`IncTable::scores`]) or summed across shards
/// ([`IncTable::merged_scores`]). Keeping both paths on this one struct
/// is what guarantees their bit-identical results.
struct ScoreAggregates<'a> {
    n: u64,
    kx: u64,
    nonzero_cells: u64,
    sum_row_max: u64,
    violating_mass: u64,
    sum_sq_rows: u64,
    sum_sq_cols: u64,
    sum_sq_cells: u64,
    hist_rows: &'a CountHist,
    hist_cols: &'a CountHist,
    hist_cells: &'a CountHist,
    hist_row_shape: &'a BTreeMap<(u64, u64), u64>,
}

impl ScoreAggregates<'_> {
    fn scores(&self) -> StreamScores {
        if self.n == 0 || self.nonzero_cells == self.kx {
            return StreamScores::exact();
        }
        let nf = self.n as f64;
        let kx = self.kx as f64;
        let n2 = nf * nf;
        // VIOLATION family (pure integer ratios).
        let rho = kx / self.nonzero_cells as f64;
        let g2 = 1.0 - self.violating_mass as f64 / nf;
        let g3 = self.sum_row_max as f64 / nf;
        let k = self.kx;
        let g3_prime = (self.sum_row_max - k) as f64 / (self.n - k) as f64;
        // LOGICAL family. The integer sums are exact, and every partial
        // f64 sum below 2^53 of integer terms is too, so these match the
        // batch measures bit-for-bit.
        let violating_pairs = (self.sum_sq_rows - self.sum_sq_cells) as f64;
        let g1 = 1.0 - violating_pairs / n2;
        let g1_prime = 1.0 - violating_pairs / (n2 - self.sum_sq_cells as f64);
        // pdep via the group-shape histogram: Σ_i (a_i/N − sq_i/(a_i·N)),
        // identical shapes merged, ascending shape order.
        let mut ecl = 0.0;
        for (&(a, sq), &mult) in self.hist_row_shape {
            let (af, sqf) = (a as f64, sq as f64);
            ecl += mult as f64 * (af / nf - sqf / (af * nf));
        }
        let pdep = 1.0 - ecl.max(0.0);
        let py = self.sum_sq_cols as f64 / n2;
        let tau = (pdep - py) / (1.0 - py);
        let e_pdep = py + (kx - 1.0) / (nf - 1.0) * (1.0 - py);
        let mu_plus = ((pdep - e_pdep) / (1.0 - e_pdep)).max(0.0);
        // SHANNON family via the count histograms:
        // H(Y|X) = (Σ_i a·lg a − Σ_ij c·lg c)/N,
        // H(Y)   = lg N − (Σ_j b·lg b)/N.
        let s_rows = hist_entropy_sum(self.hist_rows);
        let s_cells = hist_entropy_sum(self.hist_cells);
        let s_cols = hist_entropy_sum(self.hist_cols);
        let hyx = ((s_rows - s_cells) / nf).max(0.0);
        let hy = (nf.log2() - s_cols / nf).max(0.0);
        let g1s = (1.0 - hyx).max(0.0);
        // FD violated => |dom(Y)| ≥ 2 => H(Y) > 0.
        let fi = 1.0 - hyx / hy;
        StreamScores {
            rho,
            g2,
            g3,
            g3_prime,
            g1s,
            fi,
            g1,
            g1_prime,
            pdep,
            tau,
            mu_plus,
        }
        .clamped()
    }
}

// ------------------------------------------------------------- wire form

/// `IncTable` is the unit the coordinator⇄worker wire protocol moves:
/// after every applied delta slice, a process-backed shard ships its
/// tables back for [`IncTable::merge`] / [`IncTable::merged_scores`].
///
/// Layout: `n`, then the X-groups **sorted by local id** (each with its
/// total/sq/max and its `(y, count)` cells sorted by `y`), the column
/// totals sorted by `y`, the six scalar aggregates, and the four count
/// histograms in ascending key order. Sorting makes the encoding
/// canonical: two equal tables produce identical bytes. Every maintained
/// aggregate is an integer, so the round-trip is exact and merged scores
/// read from a decoded table are **bit-identical** to ones read from the
/// original.
impl Encode for IncTable {
    fn encode(&self, out: &mut Vec<u8>) {
        fn hist(h: &CountHist, out: &mut Vec<u8>) {
            (h.len() as u32).encode(out);
            for (&k, &v) in h {
                k.encode(out);
                v.encode(out);
            }
        }
        self.n.encode(out);
        let mut xs: Vec<u32> = self.groups.keys().copied().collect();
        xs.sort_unstable();
        (xs.len() as u32).encode(out);
        for x in xs {
            let g = &self.groups[&x];
            x.encode(out);
            g.total.encode(out);
            g.sq.encode(out);
            g.max.encode(out);
            let mut ys: Vec<(u32, u64)> = g.ys.iter().map(|(&y, &c)| (y, c)).collect();
            ys.sort_unstable();
            ys.encode(out);
        }
        let mut cols: Vec<(u32, u64)> = self.col_totals.iter().map(|(&y, &b)| (y, b)).collect();
        cols.sort_unstable();
        cols.encode(out);
        self.nonzero_cells.encode(out);
        self.sum_row_max.encode(out);
        self.violating_mass.encode(out);
        self.sum_sq_rows.encode(out);
        self.sum_sq_cols.encode(out);
        self.sum_sq_cells.encode(out);
        hist(&self.hist_rows, out);
        hist(&self.hist_cols, out);
        hist(&self.hist_cells, out);
        (self.hist_row_shape.len() as u32).encode(out);
        for (&(a, sq), &mult) in &self.hist_row_shape {
            a.encode(out);
            sq.encode(out);
            mult.encode(out);
        }
    }
}

impl Decode for IncTable {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        fn hist(r: &mut Reader<'_>) -> Result<CountHist, DecodeError> {
            let len = r.len_prefix("count histogram", 16)?;
            let mut h = CountHist::new();
            for _ in 0..len {
                let k = u64::decode(r)?;
                let v = u64::decode(r)?;
                h.insert(k, v);
            }
            Ok(h)
        }
        let mut t = IncTable::new();
        t.n = u64::decode(r)?;
        let n_groups = r.len_prefix("X groups", 4 + 8 * 3 + 4)?;
        for _ in 0..n_groups {
            let x = u32::decode(r)?;
            let total = u64::decode(r)?;
            let sq = u64::decode(r)?;
            let max = u64::decode(r)?;
            let ys: Vec<(u32, u64)> = Vec::decode(r)?;
            t.groups.insert(
                x,
                XGroup {
                    total,
                    sq,
                    max,
                    ys: ys.into_iter().collect(),
                },
            );
        }
        let cols: Vec<(u32, u64)> = Vec::decode(r)?;
        t.col_totals = cols.into_iter().collect();
        t.nonzero_cells = u64::decode(r)?;
        t.sum_row_max = u64::decode(r)?;
        t.violating_mass = u64::decode(r)?;
        t.sum_sq_rows = u64::decode(r)?;
        t.sum_sq_cols = u64::decode(r)?;
        t.sum_sq_cells = u64::decode(r)?;
        t.hist_rows = hist(r)?;
        t.hist_cols = hist(r)?;
        t.hist_cells = hist(r)?;
        let n_shapes = r.len_prefix("row-shape histogram", 24)?;
        for _ in 0..n_shapes {
            let a = u64::decode(r)?;
            let sq = u64::decode(r)?;
            let mult = u64::decode(r)?;
            t.hist_row_shape.insert((a, sq), mult);
        }
        Ok(t)
    }
}

/// Scores of the incrementally maintained measures: the paper's eleven
/// *efficiently computable* measures (everything except the RFI family
/// and SFI, whose permutation/smoothing sums are not decomposable into
/// per-group patches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamScores {
    /// ρ (CORDS co-occurrence ratio).
    pub rho: f64,
    /// g2 (non-violating tuple probability).
    pub g2: f64,
    /// g3 (largest satisfying subrelation).
    pub g3: f64,
    /// g3′ (rescaled g3).
    pub g3_prime: f64,
    /// g1ˢ (Shannon counterpart of g1).
    pub g1s: f64,
    /// FI (fraction of information).
    pub fi: f64,
    /// g1 (one minus violating-pair probability).
    pub g1: f64,
    /// g1′ (normalised g1).
    pub g1_prime: f64,
    /// pdep (Piatetsky-Shapiro & Matheus).
    pub pdep: f64,
    /// τ (Goodman & Kruskal).
    pub tau: f64,
    /// µ⁺ (the paper's recommended measure).
    pub mu_plus: f64,
}

impl StreamScores {
    /// Measure names in [`StreamScores::values`] order — the same paper
    /// order as `afd_core::fast_measures()`.
    pub const NAMES: [&'static str; 11] = [
        "rho", "g2", "g3", "g3'", "g1S", "FI", "g1", "g1'", "pdep", "tau", "mu+",
    ];

    /// All scores 1.0 — the exactly-satisfied / empty convention.
    pub fn exact() -> Self {
        StreamScores {
            rho: 1.0,
            g2: 1.0,
            g3: 1.0,
            g3_prime: 1.0,
            g1s: 1.0,
            fi: 1.0,
            g1: 1.0,
            g1_prime: 1.0,
            pdep: 1.0,
            tau: 1.0,
            mu_plus: 1.0,
        }
    }

    /// The scores in [`StreamScores::NAMES`] order.
    pub fn values(&self) -> [f64; 11] {
        [
            self.rho,
            self.g2,
            self.g3,
            self.g3_prime,
            self.g1s,
            self.fi,
            self.g1,
            self.g1_prime,
            self.pdep,
            self.tau,
            self.mu_plus,
        ]
    }

    /// Looks a score up by its paper name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<f64> {
        Self::NAMES
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(|i| self.values()[i])
    }

    /// Largest absolute per-measure difference to `other`.
    pub fn max_abs_diff(&self, other: &StreamScores) -> f64 {
        self.values()
            .iter()
            .zip(other.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` iff every score is bit-identical to `other`'s.
    pub fn bits_eq(&self, other: &StreamScores) -> bool {
        self.values()
            .iter()
            .zip(other.values())
            .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    fn clamped(mut self) -> Self {
        for v in [
            &mut self.rho,
            &mut self.g2,
            &mut self.g3,
            &mut self.g3_prime,
            &mut self.g1s,
            &mut self.fi,
            &mut self.g1,
            &mut self.g1_prime,
            &mut self.pdep,
            &mut self.tau,
            &mut self.mu_plus,
        ] {
            *v = v.clamp(0.0, 1.0);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inserts the hand-computed fixture from the measure tests:
    /// X=a: y1 ×3, y2 ×1 ; X=b: y1 ×4. N = 8.
    fn fixture() -> IncTable {
        let mut t = IncTable::new();
        for _ in 0..3 {
            t.insert(0, 0);
        }
        t.insert(0, 1);
        for _ in 0..4 {
            t.insert(1, 0);
        }
        t
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let t = fixture();
        assert_eq!(t.n(), 8);
        assert_eq!(t.n_x(), 2);
        assert_eq!(t.n_y(), 2);
        assert_eq!(t.nonzero_cells(), 3);
        assert_eq!(t.sum_row_max(), 3 + 4);
        assert_eq!(t.sum_sq_rows, 16 + 16);
        assert_eq!(t.sum_sq_cols, 49 + 1);
        assert_eq!(t.sum_sq_cells, 9 + 1 + 16);
        assert_eq!(t.violating_mass, 4);
        assert!(!t.is_exact_fd());
    }

    #[test]
    fn scores_match_paper_hand_values() {
        let s = fixture().scores();
        assert!((s.rho - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.g2 - 0.5).abs() < 1e-12);
        assert!((s.g3 - 7.0 / 8.0).abs() < 1e-12);
        assert!((s.g1 - (1.0 - 6.0 / 64.0)).abs() < 1e-12);
        assert!((s.g1_prime - (1.0 - 6.0 / 38.0)).abs() < 1e-12);
        assert!((s.pdep - 6.5 / 8.0).abs() < 1e-12);
        assert!((s.tau - 2.0 / 14.0).abs() < 1e-12);
        let h = 0.5 * -(0.75f64 * 0.75f64.log2() + 0.25 * 0.25f64.log2());
        assert!((s.g1s - (1.0 - h)).abs() < 1e-12);
    }

    #[test]
    fn delete_undoes_insert_exactly() {
        let base = fixture();
        let mut t = base.clone();
        t.insert(0, 1);
        t.insert(2, 5);
        t.delete(2, 5);
        t.delete(0, 1);
        assert!(t.scores().bits_eq(&base.scores()));
        assert_eq!(t.n(), base.n());
        assert_eq!(t.hist_rows, base.hist_rows);
        assert_eq!(t.hist_row_shape, base.hist_row_shape);
    }

    #[test]
    fn delete_majority_cell_recomputes_max() {
        let mut t = fixture();
        // X=1 has only y1 ×4; delete two -> max drops to 2.
        t.delete(1, 0);
        t.delete(1, 0);
        assert_eq!(t.sum_row_max(), 3 + 2);
        // Delete X=0's majority down below the minority.
        t.delete(0, 0);
        t.delete(0, 0);
        t.delete(0, 0);
        // X=0 now has only y2 ×1 -> exact-FD shape for that group.
        assert_eq!(t.sum_row_max(), 1 + 2);
    }

    #[test]
    fn empty_and_exact_score_one() {
        let t = IncTable::new();
        assert!(t.scores().bits_eq(&StreamScores::exact()));
        let mut t = IncTable::new();
        t.insert(0, 0);
        t.insert(1, 1);
        t.insert(1, 1);
        assert!(t.is_exact_fd());
        assert_eq!(t.scores().g3, 1.0);
        // One violation flips it.
        t.insert(1, 0);
        assert!(!t.is_exact_fd());
        assert!(t.scores().g3 < 1.0);
    }

    #[test]
    fn group_vanishes_when_emptied() {
        let mut t = IncTable::new();
        t.insert(5, 5);
        t.delete(5, 5);
        assert_eq!(t.n(), 0);
        assert_eq!(t.n_x(), 0);
        assert_eq!(t.n_y(), 0);
        assert_eq!(t.nonzero_cells(), 0);
        assert!(t.hist_rows.is_empty());
        assert!(t.hist_row_shape.is_empty());
    }

    #[test]
    fn merge_of_disjoint_x_partitions_is_bit_exact_and_order_independent() {
        // Whole table: X=a {y1×3, y2×1}, X=b {y1×4}, X=c {y2×2, y3×1}.
        let mut whole = fixture(); // a, b with y ids 0/1
        whole.insert(2, 1);
        whole.insert(2, 1);
        whole.insert(2, 2);
        // Shard 0 holds {a, b} with local y ids 0=y1, 1=y2; shard 1 holds
        // {c} with local y ids 0=y2, 1=y3.
        let s0 = fixture();
        let mut s1 = IncTable::new();
        s1.insert(0, 0);
        s1.insert(0, 0);
        s1.insert(0, 1);
        let (m0, m1): (&[u32], &[u32]) = (&[0, 1], &[1, 2]);
        let merged = IncTable::merge([(&s0, m0), (&s1, m1)]);
        assert_eq!(merged.n(), whole.n());
        assert_eq!(merged.n_x(), whole.n_x());
        assert_eq!(merged.n_y(), whole.n_y());
        assert_eq!(merged.nonzero_cells(), whole.nonzero_cells());
        assert_eq!(merged.sum_sq_cols, whole.sum_sq_cols);
        assert_eq!(merged.hist_cols, whole.hist_cols);
        assert!(merged.scores().bits_eq(&whole.scores()));
        // The materialisation-free score merge agrees bit-for-bit.
        let light = IncTable::merged_scores([(&s0, m0), (&s1, m1)]);
        assert!(light.bits_eq(&whole.scores()));
        // Reversed part order: bit-identical scores.
        let swapped = IncTable::merge([(&s1, m1), (&s0, m0)]);
        assert!(swapped.scores().bits_eq(&whole.scores()));
        assert!(IncTable::merged_scores([(&s1, m1), (&s0, m0)]).bits_eq(&whole.scores()));
        // A merged table keeps working as a live table.
        let mut live = merged;
        live.insert(99, 7);
        live.delete(99, 7);
        assert!(live.scores().bits_eq(&whole.scores()));
    }

    #[test]
    fn merge_of_single_part_is_identity_for_scores() {
        let t = fixture();
        let map: Vec<u32> = vec![0, 1];
        let merged = IncTable::merge([(&t, map.as_slice())]);
        assert!(merged.scores().bits_eq(&t.scores()));
        assert_eq!(merged.hist_rows, t.hist_rows);
        assert_eq!(merged.hist_row_shape, t.hist_row_shape);
    }

    #[test]
    fn max_y_id_tracks_cells_and_columns() {
        assert_eq!(IncTable::new().max_y_id(), None);
        let mut t = IncTable::new();
        t.insert(0, 7);
        t.insert(1, 3);
        assert_eq!(t.max_y_id(), Some(7));
        t.delete(0, 7);
        assert_eq!(t.max_y_id(), Some(3));
    }

    #[test]
    fn wire_roundtrip_is_exact_and_canonical() {
        let mut t = fixture();
        t.insert(7, 9);
        t.delete(1, 0);
        let bytes = t.encode_to_vec();
        let back = IncTable::decode_exact(&bytes).expect("table decodes");
        assert_eq!(back, t);
        assert!(back.scores().bits_eq(&t.scores()));
        // Canonical form: equal tables encode to identical bytes even
        // though the in-memory maps hash nondeterministically.
        assert_eq!(back.encode_to_vec(), bytes);
        // A decoded table keeps working as a live table.
        let mut live = back;
        live.insert(42, 1);
        live.delete(42, 1);
        assert!(live.scores().bits_eq(&t.scores()));
    }

    #[test]
    fn names_align_with_values() {
        let s = fixture().scores();
        assert_eq!(s.get("mu+"), Some(s.mu_plus));
        assert_eq!(s.get("G3'"), Some(s.g3_prime));
        assert_eq!(s.get("nope"), None);
        assert_eq!(StreamScores::NAMES.len(), s.values().len());
    }
}
