//! Wire forms of the streaming types and the coordinator⇄worker
//! protocol.
//!
//! Everything here rides the `afd-wire` codec (fixed-width little-endian,
//! `u32` length prefixes, one-byte enum tags) inside `afd-wire` frames
//! (`AFDW` magic, version, kind byte, FNV-1a checksum). Three frame kinds
//! exist:
//!
//! * [`KIND_REQUEST`] — a [`WorkerRequest`] from the coordinator to a
//!   shard worker (over the worker's stdin);
//! * [`KIND_RESPONSE`] — a [`WorkerResponse`] back (over its stdout);
//! * [`KIND_SNAPSHOT`] — a persisted [`SessionSnapshot`] (the `afd save`
//!   / `afd load` file format).
//!
//! The protocol is strict request/response: the coordinator writes one
//! request frame and reads exactly one response frame, so worker stdout
//! never interleaves. Every mutating response carries the worker's full
//! per-candidate state ([`ShardState`]: the [`IncTable`] merge inputs
//! plus the value-level Y side keys) — the coordinator decodes it and
//! merges via [`IncTable::merge`], bit-identical to in-process shards.

use afd_relation::{AttrSet, Fd, Relation, Schema, Value};
use afd_wire::{decode_framed, encode_framed, Decode, DecodeError, Encode, Reader, FRAME_OVERHEAD};

use crate::delta::{RowDelta, RowId, StreamError, TransportError, TransportErrorKind};
use crate::session::{CompactionReport, ScoreDiff};
use crate::table::{IncTable, StreamScores};

/// Frame kind of coordinator → worker [`WorkerRequest`]s.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind of worker → coordinator [`WorkerResponse`]s.
pub const KIND_RESPONSE: u8 = 2;
/// Frame kind of persisted [`SessionSnapshot`]s.
pub const KIND_SNAPSHOT: u8 = 3;

impl Encode for StreamScores {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self.values() {
            v.encode(out);
        }
    }
}

impl Decode for StreamScores {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StreamScores {
            rho: f64::decode(r)?,
            g2: f64::decode(r)?,
            g3: f64::decode(r)?,
            g3_prime: f64::decode(r)?,
            g1s: f64::decode(r)?,
            fi: f64::decode(r)?,
            g1: f64::decode(r)?,
            g1_prime: f64::decode(r)?,
            pdep: f64::decode(r)?,
            tau: f64::decode(r)?,
            mu_plus: f64::decode(r)?,
        })
    }
}

impl Encode for ScoreDiff {
    fn encode(&self, out: &mut Vec<u8>) {
        self.candidate.encode(out);
        self.before.encode(out);
        self.after.encode(out);
    }
}

impl Decode for ScoreDiff {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ScoreDiff {
            candidate: usize::decode(r)?,
            before: StreamScores::decode(r)?,
            after: StreamScores::decode(r)?,
        })
    }
}

impl Encode for RowDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inserts.encode(out);
        self.deletes.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.inserts.encoded_len() + self.deletes.encoded_len()
    }
}

impl Decode for RowDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RowDelta {
            inserts: Vec::<Vec<Value>>::decode(r)?,
            deletes: Vec::<RowId>::decode(r)?,
        })
    }
}

impl Encode for CompactionReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows_dropped.encode(out);
        self.candidates_checked.encode(out);
        self.n_live.encode(out);
    }
}

impl Decode for CompactionReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CompactionReport {
            rows_dropped: usize::decode(r)?,
            candidates_checked: usize::decode(r)?,
            n_live: usize::decode(r)?,
        })
    }
}

const ERR_ARITY: u8 = 0;
const ERR_UNKNOWN_ROW: u8 = 1;
const ERR_ALREADY_DELETED: u8 = 2;
const ERR_UNKNOWN_ATTR: u8 = 3;
const ERR_SHARD_CONFIG: u8 = 4;
const ERR_DIVERGED: u8 = 5;
const ERR_RELATION: u8 = 6;
const ERR_TRANSPORT: u8 = 7;
const ERR_POISONED: u8 = 8;

// Transport kind tags inside an ERR_TRANSPORT payload.
const TK_SPAWN: u8 = 0;
const TK_WRITE: u8 = 1;
const TK_READ: u8 = 2;
const TK_TIMEOUT: u8 = 3;
const TK_DECODE: u8 = 4;

impl Encode for TransportErrorKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TransportErrorKind::Spawn(msg) => {
                out.push(TK_SPAWN);
                msg.encode(out);
            }
            TransportErrorKind::Write(msg) => {
                out.push(TK_WRITE);
                msg.encode(out);
            }
            TransportErrorKind::Read(msg) => {
                out.push(TK_READ);
                msg.encode(out);
            }
            TransportErrorKind::Timeout { millis } => {
                out.push(TK_TIMEOUT);
                millis.encode(out);
            }
            TransportErrorKind::Decode(msg) => {
                out.push(TK_DECODE);
                msg.encode(out);
            }
        }
    }
}

impl Decode for TransportErrorKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            TK_SPAWN => Ok(TransportErrorKind::Spawn(String::decode(r)?)),
            TK_WRITE => Ok(TransportErrorKind::Write(String::decode(r)?)),
            TK_READ => Ok(TransportErrorKind::Read(String::decode(r)?)),
            TK_TIMEOUT => Ok(TransportErrorKind::Timeout {
                millis: u64::decode(r)?,
            }),
            TK_DECODE => Ok(TransportErrorKind::Decode(String::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "TransportErrorKind",
                tag,
            }),
        }
    }
}

impl Encode for TransportError {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.kind.encode(out);
        self.stderr.encode(out);
    }
}

impl Decode for TransportError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TransportError {
            shard: Option::<u32>::decode(r)?,
            kind: TransportErrorKind::decode(r)?,
            stderr: Vec::<String>::decode(r)?,
        })
    }
}

/// [`StreamError`]s travel typed, so a worker-side failure surfaces at
/// the coordinator as the same variant an in-process shard would raise.
impl Encode for StreamError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StreamError::Arity { expected, got } => {
                out.push(ERR_ARITY);
                expected.encode(out);
                got.encode(out);
            }
            StreamError::UnknownRow(id) => {
                out.push(ERR_UNKNOWN_ROW);
                id.encode(out);
            }
            StreamError::AlreadyDeleted(id) => {
                out.push(ERR_ALREADY_DELETED);
                id.encode(out);
            }
            StreamError::UnknownAttr(a) => {
                out.push(ERR_UNKNOWN_ATTR);
                a.encode(out);
            }
            StreamError::ShardConfig(msg) => {
                out.push(ERR_SHARD_CONFIG);
                msg.encode(out);
            }
            StreamError::Diverged(msg) => {
                out.push(ERR_DIVERGED);
                msg.encode(out);
            }
            StreamError::Relation(msg) => {
                out.push(ERR_RELATION);
                msg.encode(out);
            }
            StreamError::Transport(e) => {
                out.push(ERR_TRANSPORT);
                e.encode(out);
            }
            StreamError::Poisoned(why) => {
                out.push(ERR_POISONED);
                why.encode(out);
            }
        }
    }
}

impl Decode for StreamError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            ERR_ARITY => Ok(StreamError::Arity {
                expected: usize::decode(r)?,
                got: usize::decode(r)?,
            }),
            ERR_UNKNOWN_ROW => Ok(StreamError::UnknownRow(RowId::decode(r)?)),
            ERR_ALREADY_DELETED => Ok(StreamError::AlreadyDeleted(RowId::decode(r)?)),
            ERR_UNKNOWN_ATTR => Ok(StreamError::UnknownAttr(u32::decode(r)?)),
            ERR_SHARD_CONFIG => Ok(StreamError::ShardConfig(String::decode(r)?)),
            ERR_DIVERGED => Ok(StreamError::Diverged(String::decode(r)?)),
            ERR_RELATION => Ok(StreamError::Relation(String::decode(r)?)),
            ERR_TRANSPORT => Ok(StreamError::Transport(<TransportError as Decode>::decode(
                r,
            )?)),
            ERR_POISONED => Ok(StreamError::Poisoned(String::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "StreamError",
                tag,
            }),
        }
    }
}

/// One candidate's coordinator-visible shard state: its [`IncTable`]
/// (the merge input) and the value-level Y side keys (`side id ->
/// RHS-value tuple`, how the coordinator identifies the same Y value
/// across shards whose dictionary codes differ).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateState {
    /// The shard's delta-maintained joint-count table.
    pub table: IncTable,
    /// Y side keys in side-id order (dense, `0..n`).
    pub y_keys: Vec<Vec<Value>>,
}

impl Encode for CandidateState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.table.encode(out);
        self.y_keys.encode(out);
    }
}

impl Decode for CandidateState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CandidateState {
            table: IncTable::decode(r)?,
            y_keys: Vec::<Vec<Value>>::decode(r)?,
        })
    }
}

/// A worker's full coordinator-visible state after a mutating request:
/// live row count plus every candidate's [`CandidateState`] in
/// subscription order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Live rows in this shard.
    pub n_live: u64,
    /// Per-candidate tables and Y keys, subscription order.
    pub candidates: Vec<CandidateState>,
}

impl Encode for ShardState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n_live.encode(out);
        self.candidates.encode(out);
    }
}

impl Decode for ShardState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ShardState {
            n_live: u64::decode(r)?,
            candidates: Vec::<CandidateState>::decode(r)?,
        })
    }
}

/// A coordinator → worker message. The worker owns one
/// [`crate::StreamSession`]; requests drive it exactly like in-process
/// shard calls would.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Create the worker's session over this schema. Must be the first
    /// request.
    Init(Schema),
    /// Subscribe a candidate FD.
    Subscribe(Fd),
    /// Apply one (router-validated) delta slice.
    Apply(RowDelta),
    /// Materialise the live rows (local arrival order) as a relation.
    Snapshot,
    /// Compact with batch-kernel verification.
    Compact,
    /// Exit cleanly.
    Shutdown,
}

const REQ_INIT: u8 = 0;
const REQ_SUBSCRIBE: u8 = 1;
const REQ_APPLY: u8 = 2;
const REQ_SNAPSHOT: u8 = 3;
const REQ_COMPACT: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

impl WorkerRequest {
    /// The borrowed view of this request — the single place request tags
    /// are emitted, so the owned and borrowed encodings cannot diverge.
    pub fn as_ref(&self) -> WorkerRequestRef<'_> {
        match self {
            WorkerRequest::Init(schema) => WorkerRequestRef::Init(schema),
            WorkerRequest::Subscribe(fd) => WorkerRequestRef::Subscribe(fd),
            WorkerRequest::Apply(delta) => WorkerRequestRef::Apply(delta),
            WorkerRequest::Snapshot => WorkerRequestRef::Snapshot,
            WorkerRequest::Compact => WorkerRequestRef::Compact,
            WorkerRequest::Shutdown => WorkerRequestRef::Shutdown,
        }
    }
}

impl Encode for WorkerRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_ref().encode(out);
    }
}

/// Borrowed view of a [`WorkerRequest`] — what the coordinator encodes,
/// so building a request never clones the delta or schema. Encodes
/// byte-identically to the owned form.
#[derive(Debug, Clone, Copy)]
pub enum WorkerRequestRef<'a> {
    /// See [`WorkerRequest::Init`].
    Init(&'a Schema),
    /// See [`WorkerRequest::Subscribe`].
    Subscribe(&'a Fd),
    /// See [`WorkerRequest::Apply`].
    Apply(&'a RowDelta),
    /// See [`WorkerRequest::Snapshot`].
    Snapshot,
    /// See [`WorkerRequest::Compact`].
    Compact,
    /// See [`WorkerRequest::Shutdown`].
    Shutdown,
}

impl Encode for WorkerRequestRef<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkerRequestRef::Init(schema) => {
                out.push(REQ_INIT);
                schema.encode(out);
            }
            WorkerRequestRef::Subscribe(fd) => {
                out.push(REQ_SUBSCRIBE);
                fd.encode(out);
            }
            WorkerRequestRef::Apply(delta) => {
                out.push(REQ_APPLY);
                delta.encode(out);
            }
            WorkerRequestRef::Snapshot => out.push(REQ_SNAPSHOT),
            WorkerRequestRef::Compact => out.push(REQ_COMPACT),
            WorkerRequestRef::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }
}

impl Decode for WorkerRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            REQ_INIT => Ok(WorkerRequest::Init(Schema::decode(r)?)),
            REQ_SUBSCRIBE => Ok(WorkerRequest::Subscribe(Fd::decode(r)?)),
            REQ_APPLY => Ok(WorkerRequest::Apply(RowDelta::decode(r)?)),
            REQ_SNAPSHOT => Ok(WorkerRequest::Snapshot),
            REQ_COMPACT => Ok(WorkerRequest::Compact),
            REQ_SHUTDOWN => Ok(WorkerRequest::Shutdown),
            tag => Err(DecodeError::BadTag {
                what: "WorkerRequest",
                tag,
            }),
        }
    }
}

/// A worker → coordinator reply. Exactly one per request.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerResponse {
    /// `Init` / `Shutdown` acknowledged.
    Ok,
    /// `Subscribe` done: the candidate's index plus refreshed state.
    Subscribed {
        /// Candidate index (subscription order, same on every shard).
        cid: u32,
        /// Full state after the subscribe.
        state: ShardState,
    },
    /// `Apply` done: the refreshed state the coordinator merges.
    Applied(ShardState),
    /// `Snapshot` result: live rows in local arrival order.
    Snapshot(Relation),
    /// `Compact` done (verification passed): report + refreshed state
    /// (side ids were reset by compaction).
    Compacted {
        /// The shard's compaction report.
        report: CompactionReport,
        /// Full state after compaction.
        state: ShardState,
    },
    /// The request failed with this (typed) [`StreamError`].
    Err(StreamError),
}

const RESP_OK: u8 = 0;
const RESP_SUBSCRIBED: u8 = 1;
const RESP_APPLIED: u8 = 2;
const RESP_SNAPSHOT: u8 = 3;
const RESP_COMPACTED: u8 = 4;
const RESP_ERR: u8 = 5;

impl Encode for WorkerResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkerResponse::Ok => out.push(RESP_OK),
            WorkerResponse::Subscribed { cid, state } => {
                out.push(RESP_SUBSCRIBED);
                cid.encode(out);
                state.encode(out);
            }
            WorkerResponse::Applied(state) => {
                out.push(RESP_APPLIED);
                state.encode(out);
            }
            WorkerResponse::Snapshot(rel) => {
                out.push(RESP_SNAPSHOT);
                rel.encode(out);
            }
            WorkerResponse::Compacted { report, state } => {
                out.push(RESP_COMPACTED);
                report.encode(out);
                state.encode(out);
            }
            WorkerResponse::Err(e) => {
                out.push(RESP_ERR);
                e.encode(out);
            }
        }
    }
}

impl Decode for WorkerResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            RESP_OK => Ok(WorkerResponse::Ok),
            RESP_SUBSCRIBED => Ok(WorkerResponse::Subscribed {
                cid: u32::decode(r)?,
                state: ShardState::decode(r)?,
            }),
            RESP_APPLIED => Ok(WorkerResponse::Applied(ShardState::decode(r)?)),
            RESP_SNAPSHOT => Ok(WorkerResponse::Snapshot(Relation::decode(r)?)),
            RESP_COMPACTED => Ok(WorkerResponse::Compacted {
                report: CompactionReport::decode(r)?,
                state: ShardState::decode(r)?,
            }),
            RESP_ERR => Ok(WorkerResponse::Err(StreamError::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "WorkerResponse",
                tag,
            }),
        }
    }
}

/// A persisted streaming session: everything needed to resume scoring
/// exactly where it stopped.
///
/// The snapshot stores the **live rows in global order** (columnar, via
/// the relation codec) plus the sharding configuration and the
/// subscription list. Restoring rebuilds the session from those rows —
/// equivalent to resuming right after a [`crate::ShardedSession::compact`]:
/// row ids renumber densely in arrival order, and every candidate's
/// score reads are **bit-identical** to the session that was saved
/// (score reads are bitwise-deterministic functions of the live rows).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The live rows in global row order (schema included).
    pub rows: Relation,
    /// The hash-partitioning key ([`AttrSet::empty`] when unsharded).
    pub shard_key: AttrSet,
    /// Shard count the session ran with.
    pub n_shards: u32,
    /// Subscribed candidates, subscription order.
    pub subscriptions: Vec<Fd>,
    /// Auto-compaction cadence, if enabled.
    pub compact_every: Option<u64>,
}

impl Encode for SessionSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.shard_key.encode(out);
        self.n_shards.encode(out);
        self.subscriptions.encode(out);
        self.compact_every.encode(out);
    }

    fn encoded_len(&self) -> usize {
        SnapshotStats::payload_len(
            &self.rows,
            &self.shard_key,
            &self.subscriptions,
            self.compact_every,
        )
    }
}

impl Decode for SessionSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SessionSnapshot {
            rows: Relation::decode(r)?,
            shard_key: AttrSet::decode(r)?,
            n_shards: u32::decode(r)?,
            subscriptions: Vec::<Fd>::decode(r)?,
            compact_every: Option::<u64>::decode(r)?,
        })
    }
}

/// Size and shape of a [`SessionSnapshot`] **without encoding it**.
///
/// Eviction accounting and the serve bench need "how big would this
/// session be on disk" per measurement; paying a full columnar encode
/// (`O(rows)` byte writes) each time would dwarf the thing being
/// measured. The arithmetic here mirrors the codec exactly —
/// [`SnapshotStats::framed_len`] is pinned equal to
/// `SessionSnapshot::to_bytes().len()` by test — at
/// `O(arity + dictionary values)` cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Exact byte length of the framed blob [`SessionSnapshot::to_bytes`]
    /// would produce (header + payload + checksum).
    pub framed_len: usize,
    /// Live rows the snapshot carries.
    pub n_rows: usize,
    /// Subscribed candidates the snapshot carries.
    pub n_subscriptions: usize,
}

impl SnapshotStats {
    /// Exact payload length of a snapshot assembled from these parts.
    fn payload_len(
        rows: &Relation,
        shard_key: &AttrSet,
        subscriptions: &[Fd],
        compact_every: Option<u64>,
    ) -> usize {
        rows.encoded_len()
            + shard_key.encoded_len()
            + 4 // n_shards: u32
            + subscriptions.encoded_len()
            + compact_every.encoded_len()
    }

    /// Stats for a snapshot that *would be* assembled from these parts —
    /// lets the engine size its own state without cloning rows into a
    /// throwaway [`SessionSnapshot`] first.
    #[must_use]
    pub fn of_parts(
        rows: &Relation,
        shard_key: &AttrSet,
        subscriptions: &[Fd],
        compact_every: Option<u64>,
    ) -> Self {
        SnapshotStats {
            framed_len: FRAME_OVERHEAD
                + Self::payload_len(rows, shard_key, subscriptions, compact_every),
            n_rows: rows.n_rows(),
            n_subscriptions: subscriptions.len(),
        }
    }
}

impl SessionSnapshot {
    /// Size and shape of this snapshot without re-encoding it — see
    /// [`SnapshotStats`].
    #[must_use]
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats::of_parts(
            &self.rows,
            &self.shard_key,
            &self.subscriptions,
            self.compact_every,
        )
    }

    /// The snapshot as one framed, checksummed byte blob (the `afd save`
    /// file format).
    ///
    /// # Errors
    /// [`DecodeError::BadLength`] when the encoded snapshot exceeds the
    /// frame payload cap (`afd_wire::MAX_PAYLOAD`) — refused at write
    /// time rather than producing a blob no reader accepts.
    pub fn to_bytes(&self) -> Result<Vec<u8>, DecodeError> {
        encode_framed(KIND_SNAPSHOT, self)
    }

    /// Parses a framed snapshot blob.
    ///
    /// # Errors
    /// [`DecodeError`] on anything that is not a well-formed,
    /// checksum-clean snapshot frame of the supported version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        decode_framed(KIND_SNAPSHOT, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::AttrId;

    fn scores() -> StreamScores {
        let mut t = IncTable::new();
        for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 0), (2, 2)] {
            t.insert(x, y);
        }
        t.scores()
    }

    #[test]
    fn stream_scores_roundtrip_bit_exactly() {
        let s = scores();
        let back = StreamScores::decode_exact(&s.encode_to_vec()).unwrap();
        assert!(back.bits_eq(&s));
    }

    #[test]
    fn score_diff_and_delta_roundtrip() {
        let diff = ScoreDiff {
            candidate: 3,
            before: StreamScores::exact(),
            after: scores(),
        };
        let back = ScoreDiff::decode_exact(&diff.encode_to_vec()).unwrap();
        assert_eq!(back.candidate, 3);
        assert!(back.before.bits_eq(&diff.before));
        assert!(back.after.bits_eq(&diff.after));

        let delta = RowDelta {
            inserts: vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::str("x"), Value::float(2.5)],
            ],
            deletes: vec![3, 0, 7],
        };
        let back = RowDelta::decode_exact(&delta.encode_to_vec()).unwrap();
        assert_eq!(back.inserts, delta.inserts);
        assert_eq!(back.deletes, delta.deletes);
    }

    #[test]
    fn worker_protocol_roundtrips() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let reqs = [
            WorkerRequest::Init(schema.clone()),
            WorkerRequest::Subscribe(Fd::linear(AttrId(0), AttrId(1))),
            WorkerRequest::Apply(RowDelta::delete_only([1, 2])),
            WorkerRequest::Snapshot,
            WorkerRequest::Compact,
            WorkerRequest::Shutdown,
        ];
        for req in &reqs {
            let back = WorkerRequest::decode_exact(&req.encode_to_vec()).unwrap();
            assert_eq!(&back, req);
        }
        // The borrowed request view encodes byte-identically to the
        // owned form.
        let delta = RowDelta::delete_only([1, 2]);
        let fd = Fd::linear(AttrId(0), AttrId(1));
        for (r, o) in [
            (WorkerRequestRef::Init(&schema), reqs[0].clone()),
            (WorkerRequestRef::Subscribe(&fd), reqs[1].clone()),
            (WorkerRequestRef::Apply(&delta), reqs[2].clone()),
            (WorkerRequestRef::Snapshot, reqs[3].clone()),
            (WorkerRequestRef::Compact, reqs[4].clone()),
            (WorkerRequestRef::Shutdown, reqs[5].clone()),
        ] {
            assert_eq!(r.encode_to_vec(), o.encode_to_vec());
        }
        // Typed errors survive the wire.
        for e in [
            StreamError::Arity {
                expected: 2,
                got: 3,
            },
            StreamError::UnknownRow(7),
            StreamError::AlreadyDeleted(1),
            StreamError::UnknownAttr(4),
            StreamError::ShardConfig("key".into()),
            StreamError::Diverged("pli".into()),
            StreamError::Relation("csv".into()),
            StreamError::Transport(TransportError::read("pipe")),
            StreamError::Transport(
                TransportError::timeout(250)
                    .with_shard(3)
                    .with_stderr(vec!["panicked".into(), "at worker.rs".into()]),
            ),
            StreamError::Transport(TransportError::spawn("no such file").with_shard(0)),
            StreamError::Transport(TransportError::write("broken pipe")),
            StreamError::Transport(TransportError::decode("bad magic")),
            StreamError::Poisoned("retry budget exhausted".into()),
        ] {
            assert_eq!(StreamError::decode_exact(&e.encode_to_vec()).unwrap(), e);
        }
        let mut table = IncTable::new();
        table.insert(0, 0);
        let state = ShardState {
            n_live: 1,
            candidates: vec![CandidateState {
                table,
                y_keys: vec![vec![Value::Int(9)]],
            }],
        };
        let resps = [
            WorkerResponse::Ok,
            WorkerResponse::Subscribed {
                cid: 0,
                state: state.clone(),
            },
            WorkerResponse::Applied(state.clone()),
            WorkerResponse::Snapshot(Relation::from_pairs([(1, 2)])),
            WorkerResponse::Compacted {
                report: CompactionReport {
                    rows_dropped: 2,
                    candidates_checked: 1,
                    n_live: 5,
                },
                state,
            },
            WorkerResponse::Err(StreamError::Diverged("boom".into())),
        ];
        for resp in &resps {
            let back = WorkerResponse::decode_exact(&resp.encode_to_vec()).unwrap();
            match (&back, resp) {
                (WorkerResponse::Snapshot(a), WorkerResponse::Snapshot(b)) => {
                    assert_eq!(a.n_rows(), b.n_rows());
                }
                (
                    WorkerResponse::Compacted { report: a, .. },
                    WorkerResponse::Compacted { report: b, .. },
                ) => {
                    assert_eq!(a.rows_dropped, b.rows_dropped);
                    assert_eq!(a.n_live, b.n_live);
                }
                _ => assert_eq!(&back, resp),
            }
        }
    }

    #[test]
    fn session_snapshot_roundtrips_framed() {
        let snap = SessionSnapshot {
            rows: Relation::from_pairs([(1, 10), (2, 20), (1, 10)]),
            shard_key: AttrSet::single(AttrId(0)),
            n_shards: 4,
            subscriptions: vec![Fd::linear(AttrId(0), AttrId(1))],
            compact_every: Some(16),
        };
        let bytes = snap.to_bytes().unwrap();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.n_shards, 4);
        assert_eq!(back.shard_key, snap.shard_key);
        assert_eq!(back.subscriptions, snap.subscriptions);
        assert_eq!(back.compact_every, Some(16));
        assert_eq!(back.rows.n_rows(), 3);
        // Corruption is caught by the frame checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(SessionSnapshot::from_bytes(&corrupt).is_err());
        // Truncation too.
        assert!(SessionSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn snapshot_stats_match_the_encode_exactly() {
        let snap = SessionSnapshot {
            rows: Relation::from_pairs([(1, 10), (2, 20), (1, 10), (3, 30)]),
            shard_key: AttrSet::single(AttrId(1)),
            n_shards: 2,
            subscriptions: vec![
                Fd::linear(AttrId(0), AttrId(1)),
                Fd::linear(AttrId(1), AttrId(0)),
            ],
            compact_every: None,
        };
        let stats = snap.stats();
        assert_eq!(stats.framed_len, snap.to_bytes().unwrap().len());
        assert_eq!(stats.n_rows, 4);
        assert_eq!(stats.n_subscriptions, 2);
        assert_eq!(snap.encoded_len(), snap.encode_to_vec().len());
        // The parts-based form agrees with the assembled snapshot's.
        let by_parts = SnapshotStats::of_parts(
            &snap.rows,
            &snap.shard_key,
            &snap.subscriptions,
            snap.compact_every,
        );
        assert_eq!(by_parts, stats);

        let delta = RowDelta {
            inserts: vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Null, Value::float(0.5)],
            ],
            deletes: vec![3, 7],
        };
        assert_eq!(delta.encoded_len(), delta.encode_to_vec().len());
    }
}
