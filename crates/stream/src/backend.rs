//! Pluggable shard backends: where a [`crate::ShardedSession`]'s shards
//! actually live.
//!
//! The coordinator ([`crate::ShardedSession`]) only ever talks to shards
//! through [`ShardBackend`] — subscribe, apply a routed delta slice,
//! read the candidate's [`IncTable`] merge input and Y side keys, take a
//! snapshot, compact. Two implementations exist:
//!
//! * [`InProcShard`] — a [`StreamSession`] in the coordinator's address
//!   space (the original topology; zero overhead).
//! * [`ProcessShard`] — an `afd shard-worker` **child process** speaking
//!   the checksummed `afd-wire` protocol over its stdin/stdout. After
//!   every mutating request the worker ships its per-candidate state
//!   back; the coordinator decodes it and merges via
//!   [`IncTable::merge`], **bit-identical** to the in-process path
//!   (every maintained aggregate is an integer, so the codec round-trip
//!   is exact).
//!
//! A dead or corrupted worker never panics the coordinator: transport
//! failures surface as [`StreamError::Transport`] and the session
//! poisons itself (reads keep serving the last consistent state,
//! mutation is refused).

use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use afd_relation::{Fd, Relation, Schema, Value};
use afd_wire::{encode_framed, read_frame_from, Decode, StreamFrame};

use crate::delta::{RowDelta, StreamError};
use crate::session::{CompactionReport, StreamSession};
use crate::table::IncTable;
use crate::wire::{ShardState, WorkerRequestRef, WorkerResponse, KIND_REQUEST, KIND_RESPONSE};

/// One shard of a [`crate::ShardedSession`], wherever it lives.
///
/// The coordinator routes deltas and owns the cross-shard Y-id space;
/// the backend owns one shard's rows and per-candidate state. Contract:
/// after any `Ok` from a mutating call, [`ShardBackend::table`],
/// [`ShardBackend::n_y_side_ids`] and [`ShardBackend::y_side_values`]
/// reflect the post-call state.
pub trait ShardBackend: Send {
    /// Subscribes a candidate FD (validated by the coordinator first).
    ///
    /// # Errors
    /// [`StreamError`] — for [`ProcessShard`], transport failures too.
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError>;

    /// Applies one router-validated delta slice.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the worker died or sent garbage
    /// (in-process shards cannot fail here — the router validated).
    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError>;

    /// The candidate's current [`IncTable`] — the merge input.
    fn table(&self, cid: usize) -> &IncTable;

    /// Live rows in this shard.
    fn n_live(&self) -> usize;

    /// Y side ids assigned for candidate `cid` (dense, `0..n`).
    fn n_y_side_ids(&self, cid: usize) -> usize;

    /// The value-level Y key of side id `id` for candidate `cid`.
    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value>;

    /// The shard's live rows as a compact relation, local arrival order.
    ///
    /// # Errors
    /// [`StreamError::Transport`] for a process shard whose pipe failed.
    fn snapshot(&mut self) -> Result<Relation, StreamError>;

    /// Compacts with batch-kernel verification.
    ///
    /// # Errors
    /// [`StreamError::Diverged`] / [`StreamError::Transport`].
    fn compact(&mut self) -> Result<CompactionReport, StreamError>;
}

// ------------------------------------------------------------ in-process

/// The original topology: one [`StreamSession`] per shard, in the
/// coordinator's address space.
#[derive(Debug, Clone)]
pub struct InProcShard(StreamSession);

impl InProcShard {
    /// An empty in-process shard over `schema`.
    pub fn new(schema: Schema) -> Self {
        InProcShard(StreamSession::new(schema))
    }

    /// The wrapped session (tests and benches inspect it).
    pub fn session(&self) -> &StreamSession {
        &self.0
    }
}

impl ShardBackend for InProcShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        self.0.subscribe(fd.clone())
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        self.0.apply(delta).map(|_| ())
    }

    fn table(&self, cid: usize) -> &IncTable {
        self.0.table(cid)
    }

    fn n_live(&self) -> usize {
        self.0.relation().n_live()
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.0.n_y_side_ids(cid)
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.0.y_side_values(cid, id)
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        Ok(self.0.relation().snapshot())
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        self.0.compact()
    }
}

// ---------------------------------------------------------- out-of-process

/// How to launch a shard-worker process: the program plus its leading
/// arguments (defaults to the `afd` CLI's `shard-worker` subcommand).
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
}

impl WorkerCommand {
    /// A worker launched as `<program> shard-worker`.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: vec!["shard-worker".into()],
        }
    }

    /// Replaces the argument list (for wrappers that are not the `afd`
    /// binary).
    #[must_use]
    pub fn with_args(mut self, args: impl IntoIterator<Item = String>) -> Self {
        self.args = args.into_iter().collect();
        self
    }

    /// The worker program.
    pub fn program(&self) -> &Path {
        &self.program
    }

    /// The worker's arguments.
    pub fn args(&self) -> &[String] {
        &self.args
    }

    /// Locates a binary named `name` next to (or a couple of directories
    /// above) the current executable — how benches and examples find the
    /// workspace's own `afd` binary inside `target/<profile>/` without
    /// an installed copy.
    pub fn sibling_binary(name: &str) -> Option<Self> {
        let exe = std::env::current_exe().ok()?;
        let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
        let mut dir = exe.parent();
        for _ in 0..3 {
            let d = dir?;
            let cand = d.join(&file);
            if cand.is_file() {
                return Some(WorkerCommand::new(cand));
            }
            dir = d.parent();
        }
        None
    }
}

/// A shard living in an `afd shard-worker` child process, driven over
/// its stdin/stdout with checksummed wire frames.
///
/// The protocol is strict request/response. Every mutating response
/// carries the worker's full per-candidate state ([`ShardState`]); the
/// coordinator reads [`ShardBackend::table`] &co from that cache, so
/// score merges never block on the child between deltas.
#[derive(Debug)]
pub struct ProcessShard {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    state: ShardState,
}

impl ProcessShard {
    /// Spawns one worker and initialises its session over `schema`.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the program cannot be spawned or
    /// the Init handshake fails.
    pub fn spawn(cmd: &WorkerCommand, schema: &Schema) -> Result<Self, StreamError> {
        let mut child = Command::new(&cmd.program)
            .args(&cmd.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| StreamError::Transport(format!("spawn {}: {e}", cmd.program.display())))?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut shard = ProcessShard {
            child,
            stdin: Some(stdin),
            stdout,
            state: ShardState {
                n_live: 0,
                candidates: Vec::new(),
            },
        };
        match shard.request(&WorkerRequestRef::Init(schema))? {
            WorkerResponse::Ok => Ok(shard),
            other => Err(unexpected("Init", &other)),
        }
    }

    /// The worker's process id (fault-injection tests kill it by pid).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Kills the worker outright — the fault every transport error path
    /// must survive. Used by tests; a killed shard's next request
    /// returns [`StreamError::Transport`].
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn request(&mut self, req: &WorkerRequestRef<'_>) -> Result<WorkerResponse, StreamError> {
        let frame = encode_framed(KIND_REQUEST, req)
            .map_err(|e| StreamError::Transport(format!("request encode: {e}")))?;
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| StreamError::Transport("worker stdin already closed".into()))?;
        stdin
            .write_all(&frame)
            .and_then(|()| stdin.flush())
            .map_err(|e| StreamError::Transport(format!("write to worker: {e}")))?;
        match read_frame_from(&mut self.stdout) {
            Ok(StreamFrame::Frame(KIND_RESPONSE, payload)) => {
                WorkerResponse::decode_exact(&payload)
                    .map_err(|e| StreamError::Transport(format!("response decode: {e}")))
            }
            Ok(StreamFrame::Frame(kind, _)) => Err(StreamError::Transport(format!(
                "worker sent unexpected frame kind {kind}"
            ))),
            Ok(StreamFrame::Eof) => Err(StreamError::Transport(
                "worker closed its pipe mid-request (crashed or killed)".into(),
            )),
            Err(e) => Err(StreamError::Transport(e.to_string())),
        }
    }
}

fn unexpected(req: &str, resp: &WorkerResponse) -> StreamError {
    match resp {
        WorkerResponse::Err(e) => e.clone(),
        other => StreamError::Transport(format!("unexpected worker response to {req}: {other:?}")),
    }
}

impl ProcessShard {
    /// Accepts a decoded worker state only after bounds-checking its
    /// structure — the coordinator indexes into it, and this module's
    /// fault model says a corrupted worker must surface as a typed
    /// error, never a coordinator panic.
    fn accept_state(&mut self, state: ShardState, expected: usize) -> Result<(), StreamError> {
        if state.candidates.len() != expected {
            return Err(StreamError::Transport(format!(
                "worker state carries {} candidate(s), coordinator tracks {expected}",
                state.candidates.len()
            )));
        }
        for (cid, cand) in state.candidates.iter().enumerate() {
            if let Some(max) = cand.table.max_y_id() {
                if max as usize >= cand.y_keys.len() {
                    return Err(StreamError::Transport(format!(
                        "worker state for candidate {cid} references Y id {max} beyond its {} \
                         Y key(s)",
                        cand.y_keys.len()
                    )));
                }
            }
        }
        self.state = state;
        Ok(())
    }
}

impl ShardBackend for ProcessShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        let expected = self.state.candidates.len() + 1;
        match self.request(&WorkerRequestRef::Subscribe(fd))? {
            WorkerResponse::Subscribed { cid, state } => {
                self.accept_state(state, expected)?;
                Ok(cid as usize)
            }
            other => Err(unexpected("Subscribe", &other)),
        }
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        let expected = self.state.candidates.len();
        match self.request(&WorkerRequestRef::Apply(delta))? {
            WorkerResponse::Applied(state) => self.accept_state(state, expected),
            other => Err(unexpected("Apply", &other)),
        }
    }

    fn table(&self, cid: usize) -> &IncTable {
        &self.state.candidates[cid].table
    }

    fn n_live(&self) -> usize {
        self.state.n_live as usize
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.state.candidates[cid].y_keys.len()
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.state.candidates[cid].y_keys[id as usize].clone()
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        match self.request(&WorkerRequestRef::Snapshot)? {
            WorkerResponse::Snapshot(rel) => Ok(rel),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        let expected = self.state.candidates.len();
        match self.request(&WorkerRequestRef::Compact)? {
            WorkerResponse::Compacted { report, state } => {
                self.accept_state(state, expected)?;
                Ok(report)
            }
            other => Err(unexpected("Compact", &other)),
        }
    }
}

impl Drop for ProcessShard {
    fn drop(&mut self) {
        // Best-effort graceful shutdown: ask, close the pipe (the worker
        // exits on EOF anyway), then make sure no zombie remains.
        if let Some(mut stdin) = self.stdin.take() {
            if let Ok(frame) = encode_framed(KIND_REQUEST, &WorkerRequestRef::Shutdown) {
                let _ = stdin.write_all(&frame);
                let _ = stdin.flush();
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ------------------------------------------------------------- dispatch

/// Runtime-selected backend — what `AfdEngine` holds when the topology
/// is a configuration choice rather than a compile-time one.
#[derive(Debug)]
pub enum AnyShard {
    /// An in-process shard.
    InProc(InProcShard),
    /// An out-of-process worker.
    Process(ProcessShard),
}

impl ShardBackend for AnyShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        match self {
            AnyShard::InProc(s) => s.subscribe(fd),
            AnyShard::Process(s) => s.subscribe(fd),
        }
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.apply(delta),
            AnyShard::Process(s) => s.apply(delta),
        }
    }

    fn table(&self, cid: usize) -> &IncTable {
        match self {
            AnyShard::InProc(s) => s.table(cid),
            AnyShard::Process(s) => s.table(cid),
        }
    }

    fn n_live(&self) -> usize {
        match self {
            AnyShard::InProc(s) => s.n_live(),
            AnyShard::Process(s) => s.n_live(),
        }
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        match self {
            AnyShard::InProc(s) => s.n_y_side_ids(cid),
            AnyShard::Process(s) => s.n_y_side_ids(cid),
        }
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        match self {
            AnyShard::InProc(s) => s.y_side_values(cid, id),
            AnyShard::Process(s) => s.y_side_values(cid, id),
        }
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        match self {
            AnyShard::InProc(s) => s.snapshot(),
            AnyShard::Process(s) => s.snapshot(),
        }
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        match self {
            AnyShard::InProc(s) => s.compact(),
            AnyShard::Process(s) => s.compact(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::AttrId;

    #[test]
    fn in_proc_shard_round_trip() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let mut shard = InProcShard::new(schema);
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let cid = shard.subscribe(&fd).unwrap();
        shard
            .apply(&RowDelta::insert_only([
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
            ]))
            .unwrap();
        assert_eq!(shard.n_live(), 2);
        assert_eq!(shard.table(cid).n(), 2);
        assert_eq!(shard.n_y_side_ids(cid), 2);
        assert_eq!(shard.y_side_values(cid, 0), vec![Value::Int(10)]);
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.n_rows(), 2);
        let report = shard.compact().unwrap();
        assert_eq!(report.n_live, 2);
    }

    #[test]
    fn spawn_failure_is_typed() {
        let cmd = WorkerCommand::new("/definitely/not/a/binary");
        let schema = Schema::new(["X", "Y"]).unwrap();
        assert!(matches!(
            ProcessShard::spawn(&cmd, &schema),
            Err(StreamError::Transport(_))
        ));
    }

    #[test]
    fn sibling_binary_misses_cleanly() {
        assert!(WorkerCommand::sibling_binary("no-such-binary-here").is_none());
    }
}
