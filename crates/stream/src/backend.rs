//! Pluggable shard backends: where a [`crate::ShardedSession`]'s shards
//! actually live.
//!
//! The coordinator ([`crate::ShardedSession`]) only ever talks to shards
//! through [`ShardBackend`] — subscribe, apply a routed delta slice,
//! read the candidate's [`IncTable`] merge input and Y side keys, take a
//! snapshot, compact. Three topologies exist:
//!
//! * [`InProcShard`] — a [`StreamSession`] in the coordinator's address
//!   space (the original topology; zero overhead).
//! * [`RemoteShard`] — a worker session on the far side of an `afd-net`
//!   [`Transport`], speaking the checksummed `afd-wire` protocol.
//!   [`ProcessShard`] (= `RemoteShard<StdioTransport>`) is an
//!   `afd shard-worker` **child process** over stdin/stdout;
//!   [`TcpShard`] (= `RemoteShard<TcpTransport>`) is an
//!   `afd shard-worker --listen` session over a **TCP connection**,
//!   possibly on another machine. After every mutating request the
//!   worker ships its per-candidate state back; the coordinator decodes
//!   it and merges via [`IncTable::merge`], **bit-identical** to the
//!   in-process path (every maintained aggregate is an integer, so the
//!   codec round-trip is exact).
//!
//! # Fault model and the recovery lifecycle
//!
//! A dead, hung, or corrupted worker never panics or blocks the
//! coordinator:
//!
//! * Every [`RemoteShard`] request carries a **deadline**: responses
//!   are read by a dedicated reader thread inside the transport, so a
//!   worker that stops answering surfaces as a typed
//!   [`TransportError`] ([`TransportErrorKind::Timeout`]) instead of a
//!   coordinator stuck in `read(2)` forever.
//! * The stdio worker's **stderr is captured** (piped, ring-buffered);
//!   its last lines ride along on every [`TransportError`], so a worker
//!   panic is diagnosable from the coordinator's error.
//! * Backends that report [`ShardBackend::supports_recovery`] can be
//!   [`respawn`](ShardBackend::respawn)ed: the supervisor in
//!   [`crate::ShardedSession`] tears the incarnation down, brings up a
//!   fresh one (relaunch the child; **redial with backoff** over TCP),
//!   restores the shard's last checkpoint, replays the post-checkpoint
//!   delta log, and retries the in-flight request — see
//!   [`crate::RecoveryConfig`] for the cadence/budget knobs. The
//!   supervisor path is identical across transports; only what
//!   "respawn" means differs.
//! * Poisoning still happens, but only as the *last* resort: when the
//!   retry budget is exhausted (over TCP: the listener never came
//!   back), when a backend cannot be respawned, or when a non-transport
//!   invariant breaks mid-fan-out. A poisoned session keeps serving its
//!   last consistent reads and refuses mutation with
//!   [`StreamError::Poisoned`].

use std::time::Duration;

use afd_net::{NetError, StdioTransport, TcpTransport, Transport};
use afd_relation::{Fd, Relation, Schema, Value};
use afd_wire::encode_framed;

use crate::delta::{RowDelta, StreamError, TransportError, TransportErrorKind};
use crate::fault::AFD_WORKER_FAULTS_ENV;
use crate::session::{CompactionReport, StreamSession};
use crate::table::IncTable;
use crate::wire::{ShardState, WorkerRequestRef, WorkerResponse, KIND_REQUEST, KIND_RESPONSE};

pub use afd_net::WorkerCommand;

/// Default per-request deadline for remote shards; override via
/// [`ShardBackend::configure`] (the engine plumbs
/// [`crate::RecoveryConfig::request_timeout_ms`] through).
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_millis(30_000);

/// One shard of a [`crate::ShardedSession`], wherever it lives.
///
/// The coordinator routes deltas and owns the cross-shard Y-id space;
/// the backend owns one shard's rows and per-candidate state. Contract:
/// after any `Ok` from a mutating call, [`ShardBackend::table`],
/// [`ShardBackend::n_y_side_ids`] and [`ShardBackend::y_side_values`]
/// reflect the post-call state.
pub trait ShardBackend: Send {
    /// Subscribes a candidate FD (validated by the coordinator first).
    ///
    /// # Errors
    /// [`StreamError`] — for [`RemoteShard`], transport failures too.
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError>;

    /// Applies one router-validated delta slice.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the worker died or sent garbage
    /// (in-process shards cannot fail here — the router validated).
    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError>;

    /// The candidate's current [`IncTable`] — the merge input.
    fn table(&self, cid: usize) -> &IncTable;

    /// Live rows in this shard.
    fn n_live(&self) -> usize;

    /// Y side ids assigned for candidate `cid` (dense, `0..n`).
    fn n_y_side_ids(&self, cid: usize) -> usize;

    /// The value-level Y key of side id `id` for candidate `cid`.
    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value>;

    /// The shard's live rows as a compact relation, local arrival order.
    ///
    /// # Errors
    /// [`StreamError::Transport`] for a remote shard whose channel failed.
    fn snapshot(&mut self) -> Result<Relation, StreamError>;

    /// Compacts with batch-kernel verification.
    ///
    /// # Errors
    /// [`StreamError::Diverged`] / [`StreamError::Transport`].
    fn compact(&mut self) -> Result<CompactionReport, StreamError>;

    /// Coordinator-assigned identity and request deadline. Remote
    /// backends use both (error attribution and the recv timeout);
    /// in-process shards ignore the call.
    fn configure(&mut self, shard_index: u32, deadline: Duration) {
        let _ = (shard_index, deadline);
    }

    /// True when the supervisor may tear this backend down and rebuild
    /// it (a fresh, *empty* incarnation restored via checkpoint +
    /// replay). Defaults to `false`: failures poison the session as
    /// before.
    fn supports_recovery(&self) -> bool {
        false
    }

    /// Replaces the backend with a fresh, empty incarnation (for
    /// [`ProcessShard`]: kill the old child, spawn and re-init a new
    /// one; for [`TcpShard`]: redial the listener with backoff). The
    /// caller owns restoring the shard's state afterwards.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when respawning is unsupported or the
    /// new incarnation cannot be brought up.
    fn respawn(&mut self) -> Result<(), StreamError> {
        Err(StreamError::Transport(TransportError::spawn(
            "backend does not support respawn".to_string(),
        )))
    }

    /// Asks the backend to exit cleanly within the request deadline.
    /// In-process shards have nothing to do; remote shards send a
    /// `Shutdown` request and wind the channel down.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the worker did not acknowledge
    /// or exit in time (a stdio child is still killed on drop).
    fn shutdown(&mut self) -> Result<(), StreamError> {
        Ok(())
    }
}

// ------------------------------------------------------------ in-process

/// The original topology: one [`StreamSession`] per shard, in the
/// coordinator's address space.
#[derive(Debug, Clone)]
pub struct InProcShard(StreamSession);

impl InProcShard {
    /// An empty in-process shard over `schema`.
    pub fn new(schema: Schema) -> Self {
        InProcShard(StreamSession::new(schema))
    }

    /// The wrapped session (tests and benches inspect it).
    pub fn session(&self) -> &StreamSession {
        &self.0
    }
}

impl ShardBackend for InProcShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        self.0.subscribe(fd.clone())
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        self.0.apply(delta).map(|_| ())
    }

    fn table(&self, cid: usize) -> &IncTable {
        self.0.table(cid)
    }

    fn n_live(&self) -> usize {
        self.0.relation().n_live()
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.0.n_y_side_ids(cid)
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.0.y_side_values(cid, id)
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        Ok(self.0.relation().snapshot())
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        self.0.compact()
    }
}

// --------------------------------------------------------------- remote

/// Maps a channel-level `afd-net` error into this crate's wire-codable
/// transport error kind. A failed (re)connect is classified as a spawn
/// failure: to the supervisor, "nobody listens there" and "the program
/// would not start" are the same unrecoverable-incarnation signal.
fn net_kind(e: NetError) -> TransportErrorKind {
    match e {
        NetError::Spawn(m) => TransportErrorKind::Spawn(m),
        NetError::Connect(m) => TransportErrorKind::Spawn(m),
        NetError::Write(m) => TransportErrorKind::Write(m),
        NetError::Read(m) => TransportErrorKind::Read(m),
        NetError::Timeout { millis } => TransportErrorKind::Timeout { millis },
        NetError::Decode(m) => TransportErrorKind::Decode(m),
    }
}

/// A shard session on the far side of an `afd-net` [`Transport`],
/// driven with checksummed wire frames.
///
/// The protocol is strict request/response, but responses arrive via
/// the transport's reader thread so every request carries a deadline
/// ([`ShardBackend::configure`]); a hung worker surfaces as
/// [`TransportErrorKind::Timeout`] instead of blocking the coordinator.
/// Every mutating response carries the worker's full per-candidate
/// state ([`ShardState`]); the coordinator reads
/// [`ShardBackend::table`] &co from that cache, so score merges never
/// block on the worker between deltas. The transport retains its
/// recipe (spawn command / socket address), so the supervisor can
/// [`respawn`](ShardBackend::respawn) a failed incarnation.
#[derive(Debug)]
pub struct RemoteShard<T: Transport> {
    transport: T,
    schema: Schema,
    shard_index: Option<u32>,
    deadline: Duration,
    state: ShardState,
}

/// A shard in an `afd shard-worker` child process over stdin/stdout.
pub type ProcessShard = RemoteShard<StdioTransport>;

/// A shard served by an `afd shard-worker --listen` process over TCP.
pub type TcpShard = RemoteShard<TcpTransport>;

impl<T: Transport> RemoteShard<T> {
    /// Wraps an established transport and initialises the worker's
    /// session over `schema` (the Init handshake).
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the handshake fails or times out.
    pub fn from_transport(transport: T, schema: &Schema) -> Result<Self, StreamError> {
        let mut shard = RemoteShard {
            transport,
            schema: schema.clone(),
            shard_index: None,
            deadline: DEFAULT_REQUEST_TIMEOUT,
            state: ShardState {
                n_live: 0,
                candidates: Vec::new(),
            },
        };
        match shard.request(&WorkerRequestRef::Init(schema))? {
            WorkerResponse::Ok => Ok(shard),
            other => Err(shard.unexpected("Init", &other)),
        }
    }

    /// The underlying transport (tests reach through for fault hooks).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Builds the typed transport error for a failed protocol step:
    /// shard attribution plus the transport's diagnostics (the worker
    /// stderr tail over stdio).
    fn fail(&mut self, kind: TransportErrorKind) -> StreamError {
        let worker_died = matches!(
            kind,
            TransportErrorKind::Read(_) | TransportErrorKind::Write(_)
        );
        let stderr = self.transport.diagnostics(worker_died);
        let mut err = TransportError::of_kind(kind).with_stderr(stderr);
        err.shard = self.shard_index;
        StreamError::Transport(err)
    }

    fn fail_net(&mut self, e: NetError) -> StreamError {
        self.fail(net_kind(e))
    }

    fn unexpected(&mut self, req: &str, resp: &WorkerResponse) -> StreamError {
        match resp {
            WorkerResponse::Err(e) => e.clone(),
            other => self.fail(TransportErrorKind::Decode(format!(
                "unexpected worker response to {req}: {other:?}"
            ))),
        }
    }

    fn request(&mut self, req: &WorkerRequestRef<'_>) -> Result<WorkerResponse, StreamError> {
        let frame = match encode_framed(KIND_REQUEST, req) {
            Ok(frame) => frame,
            Err(e) => {
                return Err(self.fail(TransportErrorKind::Decode(format!("request encode: {e}"))))
            }
        };
        if let Err(e) = self.transport.send(&frame) {
            return Err(self.fail_net(e));
        }
        match self.transport.recv(self.deadline) {
            Ok((KIND_RESPONSE, payload)) => {
                use afd_wire::Decode;
                WorkerResponse::decode_exact(&payload).map_err(|e| {
                    self.fail(TransportErrorKind::Decode(format!("response decode: {e}")))
                })
            }
            Ok((kind, _)) => Err(self.fail(TransportErrorKind::Decode(format!(
                "worker sent unexpected frame kind {kind}"
            )))),
            Err(e) => Err(self.fail_net(e)),
        }
    }

    /// Accepts a decoded worker state only after bounds-checking its
    /// structure — the coordinator indexes into it, and this module's
    /// fault model says a corrupted worker must surface as a typed
    /// error, never a coordinator panic.
    fn accept_state(&mut self, state: ShardState, expected: usize) -> Result<(), StreamError> {
        if state.candidates.len() != expected {
            return Err(self.fail(TransportErrorKind::Decode(format!(
                "worker state carries {} candidate(s), coordinator tracks {expected}",
                state.candidates.len()
            ))));
        }
        for (cid, cand) in state.candidates.iter().enumerate() {
            if let Some(max) = cand.table.max_y_id() {
                if max as usize >= cand.y_keys.len() {
                    return Err(self.fail(TransportErrorKind::Decode(format!(
                        "worker state for candidate {cid} references Y id {max} beyond its {} \
                         Y key(s)",
                        cand.y_keys.len()
                    ))));
                }
            }
        }
        self.state = state;
        Ok(())
    }
}

impl ProcessShard {
    /// Spawns one worker and initialises its session over `schema`.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the program cannot be spawned or
    /// the Init handshake fails (or times out).
    pub fn spawn(cmd: &WorkerCommand, schema: &Schema) -> Result<Self, StreamError> {
        // Strip the fault-injection hook before any respawn so an
        // injected fault fires at most once per plan, not once per
        // incarnation.
        let transport = StdioTransport::launch(cmd)
            .map_err(|e| StreamError::Transport(TransportError::of_kind(net_kind(e))))?
            .strip_env_on_reconnect(AFD_WORKER_FAULTS_ENV);
        Self::from_transport(transport, schema)
    }

    /// The worker's process id (fault-injection tests kill it by pid).
    pub fn pid(&self) -> u32 {
        self.transport.pid()
    }

    /// Kills the worker outright — the fault every transport error path
    /// must survive. Used by tests; a killed shard's next request
    /// returns [`StreamError::Transport`] (and a recovery-enabled
    /// session respawns it).
    pub fn kill(&mut self) {
        self.transport.kill();
    }

    /// Replaces the command future respawns use. The running worker is
    /// untouched; fault tests point this at a broken program to make
    /// every recovery attempt fail and exhaust the retry budget.
    pub fn set_command(&mut self, cmd: WorkerCommand) {
        self.transport.set_command(cmd);
    }
}

impl TcpShard {
    /// Dials an `afd shard-worker --listen` address and initialises a
    /// worker session over `schema`.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the address is malformed, nobody
    /// accepts, or the Init handshake fails.
    pub fn connect(addr: &str, schema: &Schema) -> Result<Self, StreamError> {
        let transport = TcpTransport::connect(addr)
            .map_err(|e| StreamError::Transport(TransportError::of_kind(net_kind(e))))?;
        Self::from_transport(transport, schema)
    }

    /// Drops the connection without redialing — the test hook that
    /// simulates losing a remote worker mid-stream.
    pub fn sever(&mut self) {
        self.transport.sever();
    }
}

impl<T: Transport> ShardBackend for RemoteShard<T> {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        let expected = self.state.candidates.len() + 1;
        match self.request(&WorkerRequestRef::Subscribe(fd))? {
            WorkerResponse::Subscribed { cid, state } => {
                self.accept_state(state, expected)?;
                Ok(cid as usize)
            }
            other => Err(self.unexpected("Subscribe", &other)),
        }
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        let expected = self.state.candidates.len();
        match self.request(&WorkerRequestRef::Apply(delta))? {
            WorkerResponse::Applied(state) => self.accept_state(state, expected),
            other => Err(self.unexpected("Apply", &other)),
        }
    }

    fn table(&self, cid: usize) -> &IncTable {
        &self.state.candidates[cid].table
    }

    fn n_live(&self) -> usize {
        self.state.n_live as usize
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.state.candidates[cid].y_keys.len()
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.state.candidates[cid].y_keys[id as usize].clone()
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        match self.request(&WorkerRequestRef::Snapshot)? {
            WorkerResponse::Snapshot(rel) => Ok(rel),
            other => Err(self.unexpected("Snapshot", &other)),
        }
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        let expected = self.state.candidates.len();
        match self.request(&WorkerRequestRef::Compact)? {
            WorkerResponse::Compacted { report, state } => {
                self.accept_state(state, expected)?;
                Ok(report)
            }
            other => Err(self.unexpected("Compact", &other)),
        }
    }

    fn configure(&mut self, shard_index: u32, deadline: Duration) {
        self.shard_index = Some(shard_index);
        self.deadline = deadline;
    }

    fn supports_recovery(&self) -> bool {
        self.transport.supports_reconnect()
    }

    fn respawn(&mut self) -> Result<(), StreamError> {
        if let Err(e) = self.transport.reconnect() {
            let mut te = TransportError::of_kind(net_kind(e));
            te.shard = self.shard_index;
            return Err(StreamError::Transport(te));
        }
        self.state = ShardState {
            n_live: 0,
            candidates: Vec::new(),
        };
        let schema = self.schema.clone();
        match self.request(&WorkerRequestRef::Init(&schema))? {
            WorkerResponse::Ok => Ok(()),
            other => Err(self.unexpected("Init", &other)),
        }
    }

    fn shutdown(&mut self) -> Result<(), StreamError> {
        match self.request(&WorkerRequestRef::Shutdown) {
            Ok(WorkerResponse::Ok) => {}
            Ok(other) => {
                let e = self.unexpected("Shutdown", &other);
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        let deadline = self.deadline;
        if let Err(e) = self.transport.finish(deadline) {
            return Err(self.fail_net(e));
        }
        Ok(())
    }
}

impl<T: Transport> Drop for RemoteShard<T> {
    fn drop(&mut self) {
        // Best-effort graceful exit: ask, then let the transport's drop
        // close the channel (a stdio child is killed and reaped; a TCP
        // worker sees EOF and ends its session).
        if let Ok(frame) = encode_framed(KIND_REQUEST, &WorkerRequestRef::Shutdown) {
            let _ = self.transport.send(&frame);
        }
    }
}

// ------------------------------------------------------------- dispatch

/// Runtime-selected backend — what `AfdEngine` holds when the topology
/// is a configuration choice rather than a compile-time one.
#[derive(Debug)]
pub enum AnyShard {
    /// An in-process shard.
    InProc(InProcShard),
    /// An out-of-process worker over stdin/stdout.
    Process(ProcessShard),
    /// A worker on the far side of a TCP connection.
    Tcp(TcpShard),
}

impl ShardBackend for AnyShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        match self {
            AnyShard::InProc(s) => s.subscribe(fd),
            AnyShard::Process(s) => s.subscribe(fd),
            AnyShard::Tcp(s) => s.subscribe(fd),
        }
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.apply(delta),
            AnyShard::Process(s) => s.apply(delta),
            AnyShard::Tcp(s) => s.apply(delta),
        }
    }

    fn table(&self, cid: usize) -> &IncTable {
        match self {
            AnyShard::InProc(s) => s.table(cid),
            AnyShard::Process(s) => s.table(cid),
            AnyShard::Tcp(s) => s.table(cid),
        }
    }

    fn n_live(&self) -> usize {
        match self {
            AnyShard::InProc(s) => s.n_live(),
            AnyShard::Process(s) => s.n_live(),
            AnyShard::Tcp(s) => s.n_live(),
        }
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        match self {
            AnyShard::InProc(s) => s.n_y_side_ids(cid),
            AnyShard::Process(s) => s.n_y_side_ids(cid),
            AnyShard::Tcp(s) => s.n_y_side_ids(cid),
        }
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        match self {
            AnyShard::InProc(s) => s.y_side_values(cid, id),
            AnyShard::Process(s) => s.y_side_values(cid, id),
            AnyShard::Tcp(s) => s.y_side_values(cid, id),
        }
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        match self {
            AnyShard::InProc(s) => s.snapshot(),
            AnyShard::Process(s) => s.snapshot(),
            AnyShard::Tcp(s) => s.snapshot(),
        }
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        match self {
            AnyShard::InProc(s) => s.compact(),
            AnyShard::Process(s) => s.compact(),
            AnyShard::Tcp(s) => s.compact(),
        }
    }

    fn configure(&mut self, shard_index: u32, deadline: Duration) {
        match self {
            AnyShard::InProc(s) => s.configure(shard_index, deadline),
            AnyShard::Process(s) => s.configure(shard_index, deadline),
            AnyShard::Tcp(s) => s.configure(shard_index, deadline),
        }
    }

    fn supports_recovery(&self) -> bool {
        match self {
            AnyShard::InProc(s) => s.supports_recovery(),
            AnyShard::Process(s) => s.supports_recovery(),
            AnyShard::Tcp(s) => s.supports_recovery(),
        }
    }

    fn respawn(&mut self) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.respawn(),
            AnyShard::Process(s) => s.respawn(),
            AnyShard::Tcp(s) => s.respawn(),
        }
    }

    fn shutdown(&mut self) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.shutdown(),
            AnyShard::Process(s) => s.shutdown(),
            AnyShard::Tcp(s) => s.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::AttrId;

    #[test]
    fn in_proc_shard_round_trip() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let mut shard = InProcShard::new(schema);
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let cid = shard.subscribe(&fd).unwrap();
        shard
            .apply(&RowDelta::insert_only([
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
            ]))
            .unwrap();
        assert_eq!(shard.n_live(), 2);
        assert_eq!(shard.table(cid).n(), 2);
        assert_eq!(shard.n_y_side_ids(cid), 2);
        assert_eq!(shard.y_side_values(cid, 0), vec![Value::Int(10)]);
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.n_rows(), 2);
        let report = shard.compact().unwrap();
        assert_eq!(report.n_live, 2);
        // In-process shards neither recover nor need shutting down.
        assert!(!shard.supports_recovery());
        assert!(shard.respawn().is_err());
        assert!(shard.shutdown().is_ok());
    }

    #[test]
    fn spawn_failure_is_typed() {
        let cmd = WorkerCommand::new("/definitely/not/a/binary");
        let schema = Schema::new(["X", "Y"]).unwrap();
        match ProcessShard::spawn(&cmd, &schema) {
            Err(StreamError::Transport(te)) => {
                assert!(matches!(te.kind, TransportErrorKind::Spawn(_)));
            }
            other => panic!("expected spawn transport error, got {other:?}"),
        }
    }

    #[test]
    fn tcp_connect_failure_is_typed_spawn() {
        // Bind-then-drop yields a port with (very likely) no listener;
        // the failed dial must classify as a spawn-stage failure.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let schema = Schema::new(["X", "Y"]).unwrap();
        match TcpShard::connect(&addr.to_string(), &schema) {
            Err(StreamError::Transport(te)) => {
                assert!(matches!(te.kind, TransportErrorKind::Spawn(_)), "{te:?}");
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn sibling_binary_misses_cleanly() {
        assert!(WorkerCommand::sibling_binary("no-such-binary-here").is_none());
    }
}
