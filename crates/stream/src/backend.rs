//! Pluggable shard backends: where a [`crate::ShardedSession`]'s shards
//! actually live.
//!
//! The coordinator ([`crate::ShardedSession`]) only ever talks to shards
//! through [`ShardBackend`] — subscribe, apply a routed delta slice,
//! read the candidate's [`IncTable`] merge input and Y side keys, take a
//! snapshot, compact. Two implementations exist:
//!
//! * [`InProcShard`] — a [`StreamSession`] in the coordinator's address
//!   space (the original topology; zero overhead).
//! * [`ProcessShard`] — an `afd shard-worker` **child process** speaking
//!   the checksummed `afd-wire` protocol over its stdin/stdout. After
//!   every mutating request the worker ships its per-candidate state
//!   back; the coordinator decodes it and merges via
//!   [`IncTable::merge`], **bit-identical** to the in-process path
//!   (every maintained aggregate is an integer, so the codec round-trip
//!   is exact).
//!
//! # Fault model and the recovery lifecycle
//!
//! A dead, hung, or corrupted worker never panics or blocks the
//! coordinator:
//!
//! * Every [`ProcessShard`] request carries a **deadline**: responses
//!   are read by a dedicated reader thread and handed over a channel,
//!   so a worker that stops answering surfaces as a typed
//!   [`TransportError`] ([`TransportErrorKind::Timeout`]) instead of a
//!   coordinator stuck in `read(2)` forever.
//! * The worker's **stderr is captured** (piped, ring-buffered); its
//!   last lines ride along on every [`TransportError`], so a worker
//!   panic is diagnosable from the coordinator's error.
//! * Backends that report [`ShardBackend::supports_recovery`] can be
//!   [`respawn`](ShardBackend::respawn)ed: the supervisor in
//!   [`crate::ShardedSession`] tears the incarnation down, spawns a
//!   fresh one, restores the shard's last checkpoint, replays the
//!   post-checkpoint delta log, and retries the in-flight request —
//!   see [`crate::RecoveryConfig`] for the cadence/budget knobs.
//! * Poisoning still happens, but only as the *last* resort: when the
//!   retry budget is exhausted, when a backend cannot be respawned, or
//!   when a non-transport invariant breaks mid-fan-out. A poisoned
//!   session keeps serving its last consistent reads and refuses
//!   mutation with [`StreamError::Poisoned`].

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use afd_relation::{Fd, Relation, Schema, Value};
use afd_wire::{encode_framed, read_frame_from, Decode, FrameReadError, StreamFrame};

use crate::delta::{RowDelta, StreamError, TransportError, TransportErrorKind};
use crate::fault::AFD_WORKER_FAULTS_ENV;
use crate::session::{CompactionReport, StreamSession};
use crate::table::IncTable;
use crate::wire::{ShardState, WorkerRequestRef, WorkerResponse, KIND_REQUEST, KIND_RESPONSE};

/// Default per-request deadline for process-backed shards; override via
/// [`ShardBackend::configure`] (the engine plumbs
/// [`crate::RecoveryConfig::request_timeout_ms`] through).
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_millis(30_000);

/// How many trailing worker stderr lines the coordinator retains.
const STDERR_TAIL_LINES: usize = 12;

/// One shard of a [`crate::ShardedSession`], wherever it lives.
///
/// The coordinator routes deltas and owns the cross-shard Y-id space;
/// the backend owns one shard's rows and per-candidate state. Contract:
/// after any `Ok` from a mutating call, [`ShardBackend::table`],
/// [`ShardBackend::n_y_side_ids`] and [`ShardBackend::y_side_values`]
/// reflect the post-call state.
pub trait ShardBackend: Send {
    /// Subscribes a candidate FD (validated by the coordinator first).
    ///
    /// # Errors
    /// [`StreamError`] — for [`ProcessShard`], transport failures too.
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError>;

    /// Applies one router-validated delta slice.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the worker died or sent garbage
    /// (in-process shards cannot fail here — the router validated).
    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError>;

    /// The candidate's current [`IncTable`] — the merge input.
    fn table(&self, cid: usize) -> &IncTable;

    /// Live rows in this shard.
    fn n_live(&self) -> usize;

    /// Y side ids assigned for candidate `cid` (dense, `0..n`).
    fn n_y_side_ids(&self, cid: usize) -> usize;

    /// The value-level Y key of side id `id` for candidate `cid`.
    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value>;

    /// The shard's live rows as a compact relation, local arrival order.
    ///
    /// # Errors
    /// [`StreamError::Transport`] for a process shard whose pipe failed.
    fn snapshot(&mut self) -> Result<Relation, StreamError>;

    /// Compacts with batch-kernel verification.
    ///
    /// # Errors
    /// [`StreamError::Diverged`] / [`StreamError::Transport`].
    fn compact(&mut self) -> Result<CompactionReport, StreamError>;

    /// Coordinator-assigned identity and request deadline. Process
    /// backends use both (error attribution and the recv timeout);
    /// in-process shards ignore the call.
    fn configure(&mut self, shard_index: u32, deadline: Duration) {
        let _ = (shard_index, deadline);
    }

    /// True when the supervisor may tear this backend down and rebuild
    /// it (a fresh, *empty* incarnation restored via checkpoint +
    /// replay). Defaults to `false`: failures poison the session as
    /// before.
    fn supports_recovery(&self) -> bool {
        false
    }

    /// Replaces the backend with a fresh, empty incarnation (for
    /// [`ProcessShard`]: kill the old child, spawn and re-init a new
    /// one). The caller owns restoring the shard's state afterwards.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when respawning is unsupported or the
    /// new incarnation cannot be brought up.
    fn respawn(&mut self) -> Result<(), StreamError> {
        Err(StreamError::Transport(TransportError::spawn(
            "backend does not support respawn".to_string(),
        )))
    }

    /// Asks the backend to exit cleanly within the request deadline.
    /// In-process shards have nothing to do; process shards send a
    /// `Shutdown` request and await the worker's exit.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the worker did not acknowledge
    /// or exit in time (it is still killed on drop).
    fn shutdown(&mut self) -> Result<(), StreamError> {
        Ok(())
    }
}

// ------------------------------------------------------------ in-process

/// The original topology: one [`StreamSession`] per shard, in the
/// coordinator's address space.
#[derive(Debug, Clone)]
pub struct InProcShard(StreamSession);

impl InProcShard {
    /// An empty in-process shard over `schema`.
    pub fn new(schema: Schema) -> Self {
        InProcShard(StreamSession::new(schema))
    }

    /// The wrapped session (tests and benches inspect it).
    pub fn session(&self) -> &StreamSession {
        &self.0
    }
}

impl ShardBackend for InProcShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        self.0.subscribe(fd.clone())
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        self.0.apply(delta).map(|_| ())
    }

    fn table(&self, cid: usize) -> &IncTable {
        self.0.table(cid)
    }

    fn n_live(&self) -> usize {
        self.0.relation().n_live()
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.0.n_y_side_ids(cid)
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.0.y_side_values(cid, id)
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        Ok(self.0.relation().snapshot())
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        self.0.compact()
    }
}

// ---------------------------------------------------------- out-of-process

/// How to launch a shard-worker process: the program, its leading
/// arguments (defaults to the `afd` CLI's `shard-worker` subcommand),
/// and extra environment variables (the fault-injection harness rides
/// in on [`AFD_WORKER_FAULTS_ENV`]).
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A worker launched as `<program> shard-worker`.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: vec!["shard-worker".into()],
            envs: Vec::new(),
        }
    }

    /// Replaces the argument list (for wrappers that are not the `afd`
    /// binary).
    #[must_use]
    pub fn with_args(mut self, args: impl IntoIterator<Item = String>) -> Self {
        self.args = args.into_iter().collect();
        self
    }

    /// Adds an environment variable for the worker process (replacing
    /// an earlier binding of the same key).
    #[must_use]
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let key = key.into();
        self.envs.retain(|(k, _)| *k != key);
        self.envs.push((key, value.into()));
        self
    }

    /// Drops an environment binding. The supervisor strips
    /// [`AFD_WORKER_FAULTS_ENV`] on respawn so an injected fault fires
    /// at most once per plan, not once per incarnation.
    pub fn remove_env(&mut self, key: &str) {
        self.envs.retain(|(k, _)| k != key);
    }

    /// The worker program.
    pub fn program(&self) -> &Path {
        &self.program
    }

    /// The worker's arguments.
    pub fn args(&self) -> &[String] {
        &self.args
    }

    /// The worker's extra environment bindings.
    pub fn envs(&self) -> &[(String, String)] {
        &self.envs
    }

    /// Locates a binary named `name` next to (or a couple of directories
    /// above) the current executable — how benches and examples find the
    /// workspace's own `afd` binary inside `target/<profile>/` without
    /// an installed copy.
    pub fn sibling_binary(name: &str) -> Option<Self> {
        let exe = std::env::current_exe().ok()?;
        let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
        let mut dir = exe.parent();
        for _ in 0..3 {
            let d = dir?;
            let cand = d.join(&file);
            if cand.is_file() {
                return Some(WorkerCommand::new(cand));
            }
            dir = d.parent();
        }
        None
    }
}

/// One live worker incarnation: the child process plus the threads that
/// shuttle its stdout frames and stderr lines back to the coordinator.
///
/// Owning I/O in a separate struct makes respawn a `mem::replace`: the
/// old incarnation's drop kills the child and joins both threads.
#[derive(Debug)]
struct WorkerIo {
    child: Child,
    stdin: Option<ChildStdin>,
    frames: mpsc::Receiver<Result<(u8, Vec<u8>), TransportErrorKind>>,
    reader: Option<JoinHandle<()>>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    stderr_reader: Option<JoinHandle<()>>,
}

impl WorkerIo {
    fn launch(cmd: &WorkerCommand) -> Result<Self, TransportError> {
        let mut child = Command::new(cmd.program())
            .args(cmd.args())
            .envs(cmd.envs().iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| {
                TransportError::spawn(format!("spawn {}: {e}", cmd.program().display()))
            })?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let stderr = child.stderr.take().expect("stderr piped");
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn(move || reader_loop(stdout, &tx));
        let tail = Arc::new(Mutex::new(VecDeque::new()));
        let tail_writer = Arc::clone(&tail);
        let stderr_reader = std::thread::spawn(move || stderr_loop(stderr, &tail_writer));
        Ok(WorkerIo {
            child,
            stdin: Some(stdin),
            frames: rx,
            reader: Some(reader),
            stderr_tail: tail,
            stderr_reader: Some(stderr_reader),
        })
    }

    /// The captured stderr tail. When the failure suggests the worker
    /// died (`wait_for_exit`), briefly poll for its exit and join the
    /// stderr thread first, so panic messages that raced the error are
    /// included deterministically.
    fn stderr_snapshot(&mut self, wait_for_exit: bool) -> Vec<String> {
        if wait_for_exit {
            for _ in 0..25 {
                match self.child.try_wait() {
                    Ok(Some(_)) => {
                        if let Some(h) = self.stderr_reader.take() {
                            let _ = h.join();
                        }
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => break,
                }
            }
        }
        self.stderr_tail
            .lock()
            .map(|tail| tail.iter().cloned().collect())
            .unwrap_or_default()
    }
}

impl Drop for WorkerIo {
    fn drop(&mut self) {
        drop(self.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        if let Some(h) = self.stderr_reader.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(
    mut stdout: BufReader<ChildStdout>,
    tx: &mpsc::Sender<Result<(u8, Vec<u8>), TransportErrorKind>>,
) {
    loop {
        let item = match read_frame_from(&mut stdout) {
            Ok(StreamFrame::Frame(kind, payload)) => Ok((kind, payload)),
            Ok(StreamFrame::Eof) => Err(TransportErrorKind::Read(
                "worker closed its pipe (crashed, killed, or exited)".into(),
            )),
            Err(FrameReadError::Io(e)) => {
                Err(TransportErrorKind::Read(format!("read from worker: {e}")))
            }
            Err(FrameReadError::Decode(e)) => {
                Err(TransportErrorKind::Decode(format!("worker frame: {e}")))
            }
        };
        let done = item.is_err();
        if tx.send(item).is_err() || done {
            return;
        }
    }
}

fn stderr_loop(stderr: ChildStderr, tail: &Arc<Mutex<VecDeque<String>>>) {
    for line in BufReader::new(stderr).lines() {
        let Ok(line) = line else { return };
        if let Ok(mut tail) = tail.lock() {
            if tail.len() == STDERR_TAIL_LINES {
                tail.pop_front();
            }
            tail.push_back(line);
        }
    }
}

/// A shard living in an `afd shard-worker` child process, driven over
/// its stdin/stdout with checksummed wire frames.
///
/// The protocol is strict request/response, but responses arrive via a
/// dedicated reader thread so every request carries a deadline
/// ([`ShardBackend::configure`]); a hung worker surfaces as
/// [`TransportErrorKind::Timeout`] instead of blocking the coordinator.
/// Every mutating response carries the worker's full per-candidate
/// state ([`ShardState`]); the coordinator reads
/// [`ShardBackend::table`] &co from that cache, so score merges never
/// block on the child between deltas. The spawn recipe, schema, and
/// deadline are retained so the supervisor can
/// [`respawn`](ShardBackend::respawn) a failed incarnation.
#[derive(Debug)]
pub struct ProcessShard {
    cmd: WorkerCommand,
    schema: Schema,
    shard_index: Option<u32>,
    deadline: Duration,
    io: WorkerIo,
    state: ShardState,
}

impl ProcessShard {
    /// Spawns one worker and initialises its session over `schema`.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when the program cannot be spawned or
    /// the Init handshake fails (or times out).
    pub fn spawn(cmd: &WorkerCommand, schema: &Schema) -> Result<Self, StreamError> {
        let io = WorkerIo::launch(cmd).map_err(StreamError::Transport)?;
        let mut shard = ProcessShard {
            cmd: cmd.clone(),
            schema: schema.clone(),
            shard_index: None,
            deadline: DEFAULT_REQUEST_TIMEOUT,
            io,
            state: ShardState {
                n_live: 0,
                candidates: Vec::new(),
            },
        };
        match shard.request(&WorkerRequestRef::Init(schema))? {
            WorkerResponse::Ok => Ok(shard),
            other => Err(shard.unexpected("Init", &other)),
        }
    }

    /// The worker's process id (fault-injection tests kill it by pid).
    pub fn pid(&self) -> u32 {
        self.io.child.id()
    }

    /// Kills the worker outright — the fault every transport error path
    /// must survive. Used by tests; a killed shard's next request
    /// returns [`StreamError::Transport`] (and a recovery-enabled
    /// session respawns it).
    pub fn kill(&mut self) {
        let _ = self.io.child.kill();
        let _ = self.io.child.wait();
    }

    /// Replaces the command future respawns use. The running worker is
    /// untouched; fault tests point this at a broken program to make
    /// every recovery attempt fail and exhaust the retry budget.
    pub fn set_command(&mut self, cmd: WorkerCommand) {
        self.cmd = cmd;
    }

    /// Builds the typed transport error for a failed protocol step:
    /// shard attribution plus the worker's stderr tail.
    fn fail(&mut self, kind: TransportErrorKind) -> StreamError {
        let worker_died = matches!(
            kind,
            TransportErrorKind::Read(_) | TransportErrorKind::Write(_)
        );
        let stderr = self.io.stderr_snapshot(worker_died);
        let mut err = TransportError::of_kind(kind).with_stderr(stderr);
        err.shard = self.shard_index;
        StreamError::Transport(err)
    }

    fn unexpected(&mut self, req: &str, resp: &WorkerResponse) -> StreamError {
        match resp {
            WorkerResponse::Err(e) => e.clone(),
            other => self.fail(TransportErrorKind::Decode(format!(
                "unexpected worker response to {req}: {other:?}"
            ))),
        }
    }

    fn request(&mut self, req: &WorkerRequestRef<'_>) -> Result<WorkerResponse, StreamError> {
        let frame = match encode_framed(KIND_REQUEST, req) {
            Ok(frame) => frame,
            Err(e) => {
                return Err(self.fail(TransportErrorKind::Decode(format!("request encode: {e}"))))
            }
        };
        let wrote = match self.io.stdin.as_mut() {
            None => Err("worker stdin already closed".to_string()),
            Some(stdin) => stdin
                .write_all(&frame)
                .and_then(|()| stdin.flush())
                .map_err(|e| format!("write to worker: {e}")),
        };
        if let Err(msg) = wrote {
            return Err(self.fail(TransportErrorKind::Write(msg)));
        }
        match self.io.frames.recv_timeout(self.deadline) {
            Ok(Ok((KIND_RESPONSE, payload))) => {
                WorkerResponse::decode_exact(&payload).map_err(|e| {
                    self.fail(TransportErrorKind::Decode(format!("response decode: {e}")))
                })
            }
            Ok(Ok((kind, _))) => Err(self.fail(TransportErrorKind::Decode(format!(
                "worker sent unexpected frame kind {kind}"
            )))),
            Ok(Err(kind)) => Err(self.fail(kind)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self.fail(TransportErrorKind::Timeout {
                millis: self.deadline.as_millis() as u64,
            })),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.fail(TransportErrorKind::Read(
                "worker reader thread ended (worker gone)".into(),
            ))),
        }
    }

    /// Accepts a decoded worker state only after bounds-checking its
    /// structure — the coordinator indexes into it, and this module's
    /// fault model says a corrupted worker must surface as a typed
    /// error, never a coordinator panic.
    fn accept_state(&mut self, state: ShardState, expected: usize) -> Result<(), StreamError> {
        if state.candidates.len() != expected {
            return Err(self.fail(TransportErrorKind::Decode(format!(
                "worker state carries {} candidate(s), coordinator tracks {expected}",
                state.candidates.len()
            ))));
        }
        for (cid, cand) in state.candidates.iter().enumerate() {
            if let Some(max) = cand.table.max_y_id() {
                if max as usize >= cand.y_keys.len() {
                    return Err(self.fail(TransportErrorKind::Decode(format!(
                        "worker state for candidate {cid} references Y id {max} beyond its {} \
                         Y key(s)",
                        cand.y_keys.len()
                    ))));
                }
            }
        }
        self.state = state;
        Ok(())
    }
}

impl ShardBackend for ProcessShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        let expected = self.state.candidates.len() + 1;
        match self.request(&WorkerRequestRef::Subscribe(fd))? {
            WorkerResponse::Subscribed { cid, state } => {
                self.accept_state(state, expected)?;
                Ok(cid as usize)
            }
            other => Err(self.unexpected("Subscribe", &other)),
        }
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        let expected = self.state.candidates.len();
        match self.request(&WorkerRequestRef::Apply(delta))? {
            WorkerResponse::Applied(state) => self.accept_state(state, expected),
            other => Err(self.unexpected("Apply", &other)),
        }
    }

    fn table(&self, cid: usize) -> &IncTable {
        &self.state.candidates[cid].table
    }

    fn n_live(&self) -> usize {
        self.state.n_live as usize
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.state.candidates[cid].y_keys.len()
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.state.candidates[cid].y_keys[id as usize].clone()
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        match self.request(&WorkerRequestRef::Snapshot)? {
            WorkerResponse::Snapshot(rel) => Ok(rel),
            other => Err(self.unexpected("Snapshot", &other)),
        }
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        let expected = self.state.candidates.len();
        match self.request(&WorkerRequestRef::Compact)? {
            WorkerResponse::Compacted { report, state } => {
                self.accept_state(state, expected)?;
                Ok(report)
            }
            other => Err(self.unexpected("Compact", &other)),
        }
    }

    fn configure(&mut self, shard_index: u32, deadline: Duration) {
        self.shard_index = Some(shard_index);
        self.deadline = deadline;
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn respawn(&mut self) -> Result<(), StreamError> {
        // Strip the fault-injection hook so an injected fault fires at
        // most once per plan, not once per incarnation.
        self.cmd.remove_env(AFD_WORKER_FAULTS_ENV);
        let io = WorkerIo::launch(&self.cmd).map_err(|mut te| {
            te.shard = self.shard_index;
            StreamError::Transport(te)
        })?;
        // The old incarnation's drop kills its child and joins threads.
        let _old = std::mem::replace(&mut self.io, io);
        drop(_old);
        self.state = ShardState {
            n_live: 0,
            candidates: Vec::new(),
        };
        let schema = self.schema.clone();
        match self.request(&WorkerRequestRef::Init(&schema))? {
            WorkerResponse::Ok => Ok(()),
            other => Err(self.unexpected("Init", &other)),
        }
    }

    fn shutdown(&mut self) -> Result<(), StreamError> {
        match self.request(&WorkerRequestRef::Shutdown) {
            Ok(WorkerResponse::Ok) => {}
            Ok(other) => {
                let e = self.unexpected("Shutdown", &other);
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        drop(self.io.stdin.take());
        let start = Instant::now();
        loop {
            match self.io.child.try_wait() {
                Ok(Some(_)) => return Ok(()),
                Ok(None) if start.elapsed() < self.deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Ok(None) => {
                    return Err(self.fail(TransportErrorKind::Timeout {
                        millis: self.deadline.as_millis() as u64,
                    }))
                }
                Err(e) => {
                    return Err(self.fail(TransportErrorKind::Read(format!(
                        "wait for worker exit: {e}"
                    ))))
                }
            }
        }
    }
}

impl Drop for ProcessShard {
    fn drop(&mut self) {
        // Best-effort graceful exit: ask, close the pipe (the worker
        // exits on EOF anyway); WorkerIo's drop reaps the process.
        if let Some(mut stdin) = self.io.stdin.take() {
            if let Ok(frame) = encode_framed(KIND_REQUEST, &WorkerRequestRef::Shutdown) {
                let _ = stdin.write_all(&frame);
                let _ = stdin.flush();
            }
        }
    }
}

// ------------------------------------------------------------- dispatch

/// Runtime-selected backend — what `AfdEngine` holds when the topology
/// is a configuration choice rather than a compile-time one.
#[derive(Debug)]
pub enum AnyShard {
    /// An in-process shard.
    InProc(InProcShard),
    /// An out-of-process worker.
    Process(ProcessShard),
}

impl ShardBackend for AnyShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        match self {
            AnyShard::InProc(s) => s.subscribe(fd),
            AnyShard::Process(s) => s.subscribe(fd),
        }
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.apply(delta),
            AnyShard::Process(s) => s.apply(delta),
        }
    }

    fn table(&self, cid: usize) -> &IncTable {
        match self {
            AnyShard::InProc(s) => s.table(cid),
            AnyShard::Process(s) => s.table(cid),
        }
    }

    fn n_live(&self) -> usize {
        match self {
            AnyShard::InProc(s) => s.n_live(),
            AnyShard::Process(s) => s.n_live(),
        }
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        match self {
            AnyShard::InProc(s) => s.n_y_side_ids(cid),
            AnyShard::Process(s) => s.n_y_side_ids(cid),
        }
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        match self {
            AnyShard::InProc(s) => s.y_side_values(cid, id),
            AnyShard::Process(s) => s.y_side_values(cid, id),
        }
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        match self {
            AnyShard::InProc(s) => s.snapshot(),
            AnyShard::Process(s) => s.snapshot(),
        }
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        match self {
            AnyShard::InProc(s) => s.compact(),
            AnyShard::Process(s) => s.compact(),
        }
    }

    fn configure(&mut self, shard_index: u32, deadline: Duration) {
        match self {
            AnyShard::InProc(s) => s.configure(shard_index, deadline),
            AnyShard::Process(s) => s.configure(shard_index, deadline),
        }
    }

    fn supports_recovery(&self) -> bool {
        match self {
            AnyShard::InProc(s) => s.supports_recovery(),
            AnyShard::Process(s) => s.supports_recovery(),
        }
    }

    fn respawn(&mut self) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.respawn(),
            AnyShard::Process(s) => s.respawn(),
        }
    }

    fn shutdown(&mut self) -> Result<(), StreamError> {
        match self {
            AnyShard::InProc(s) => s.shutdown(),
            AnyShard::Process(s) => s.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::AttrId;

    #[test]
    fn in_proc_shard_round_trip() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let mut shard = InProcShard::new(schema);
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let cid = shard.subscribe(&fd).unwrap();
        shard
            .apply(&RowDelta::insert_only([
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
            ]))
            .unwrap();
        assert_eq!(shard.n_live(), 2);
        assert_eq!(shard.table(cid).n(), 2);
        assert_eq!(shard.n_y_side_ids(cid), 2);
        assert_eq!(shard.y_side_values(cid, 0), vec![Value::Int(10)]);
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.n_rows(), 2);
        let report = shard.compact().unwrap();
        assert_eq!(report.n_live, 2);
        // In-process shards neither recover nor need shutting down.
        assert!(!shard.supports_recovery());
        assert!(shard.respawn().is_err());
        assert!(shard.shutdown().is_ok());
    }

    #[test]
    fn spawn_failure_is_typed() {
        let cmd = WorkerCommand::new("/definitely/not/a/binary");
        let schema = Schema::new(["X", "Y"]).unwrap();
        match ProcessShard::spawn(&cmd, &schema) {
            Err(StreamError::Transport(te)) => {
                assert!(matches!(te.kind, TransportErrorKind::Spawn(_)));
            }
            other => panic!("expected spawn transport error, got {other:?}"),
        }
    }

    #[test]
    fn sibling_binary_misses_cleanly() {
        assert!(WorkerCommand::sibling_binary("no-such-binary-here").is_none());
    }

    #[test]
    fn worker_command_env_bindings() {
        let mut cmd = WorkerCommand::new("afd")
            .with_env("A", "1")
            .with_env("A", "2")
            .with_env("B", "3");
        assert_eq!(
            cmd.envs(),
            &[
                ("A".to_string(), "2".to_string()),
                ("B".to_string(), "3".to_string())
            ]
        );
        cmd.remove_env("A");
        assert_eq!(cmd.envs(), &[("B".to_string(), "3".to_string())]);
        cmd.remove_env("not-there");
        assert_eq!(cmd.envs().len(), 1);
    }
}
