//! The shard-worker loop: one [`StreamSession`] driven by wire frames.
//!
//! `afd shard-worker` calls [`run_worker`] over its stdin/stdout; a
//! [`crate::ProcessShard`] on the coordinator side speaks the other end.
//! The loop is strict request/response — read one [`WorkerRequest`]
//! frame, act, write exactly one [`WorkerResponse`] frame — and exits
//! cleanly on `Shutdown` or a closed stdin (the coordinator dropping the
//! shard). Request-level failures (an FD outside the schema, a
//! compaction divergence) are *answered* as typed
//! [`WorkerResponse::Err`]s; only transport-level failures (corrupt
//! frames, broken pipes) abort the worker.

use std::io::{Read, Write};

use afd_wire::{encode_framed, read_frame_from, Decode, FrameReadError, StreamFrame};

use crate::delta::StreamError;
use crate::session::StreamSession;
use crate::wire::{
    CandidateState, ShardState, WorkerRequest, WorkerResponse, KIND_REQUEST, KIND_RESPONSE,
};

/// The full coordinator-visible state of a worker's session: live row
/// count plus every candidate's table and Y side keys.
pub fn shard_state(session: &StreamSession) -> ShardState {
    ShardState {
        n_live: session.relation().n_live() as u64,
        candidates: (0..session.n_candidates())
            .map(|cid| CandidateState {
                table: session.table(cid).clone(),
                y_keys: (0..session.n_y_side_ids(cid))
                    .map(|id| session.y_side_values(cid, id as u32))
                    .collect(),
            })
            .collect(),
    }
}

fn handle(session: &mut Option<StreamSession>, req: WorkerRequest) -> WorkerResponse {
    match req {
        WorkerRequest::Init(schema) => {
            *session = Some(StreamSession::new(schema));
            WorkerResponse::Ok
        }
        WorkerRequest::Shutdown => WorkerResponse::Ok,
        other => {
            let Some(session) = session.as_mut() else {
                return WorkerResponse::Err(StreamError::Transport("request before Init".into()));
            };
            match other {
                WorkerRequest::Subscribe(fd) => match session.subscribe(fd) {
                    Ok(cid) => WorkerResponse::Subscribed {
                        cid: cid as u32,
                        state: shard_state(session),
                    },
                    Err(e) => WorkerResponse::Err(e),
                },
                WorkerRequest::Apply(delta) => match session.apply(&delta) {
                    Ok(_) => WorkerResponse::Applied(shard_state(session)),
                    Err(e) => WorkerResponse::Err(e),
                },
                WorkerRequest::Snapshot => WorkerResponse::Snapshot(session.relation().snapshot()),
                WorkerRequest::Compact => match session.compact() {
                    Ok(report) => WorkerResponse::Compacted {
                        report,
                        state: shard_state(session),
                    },
                    Err(e) => WorkerResponse::Err(e),
                },
                WorkerRequest::Init(_) | WorkerRequest::Shutdown => unreachable!("handled above"),
            }
        }
    }
}

/// Runs the worker loop until `Shutdown`, EOF on `input`, or a transport
/// failure.
///
/// # Errors
/// [`FrameReadError`] when a frame fails checksum/decode verification or
/// the pipes break — request-level errors are answered in-band instead.
pub fn run_worker(mut input: impl Read, mut output: impl Write) -> Result<(), FrameReadError> {
    let mut session: Option<StreamSession> = None;
    loop {
        let (kind, payload) = match read_frame_from(&mut input)? {
            StreamFrame::Frame(kind, payload) => (kind, payload),
            StreamFrame::Eof => return Ok(()),
        };
        if kind != KIND_REQUEST {
            return Err(FrameReadError::Decode(
                afd_wire::DecodeError::UnknownMessage { kind },
            ));
        }
        let req = WorkerRequest::decode_exact(&payload)?;
        let shutdown = matches!(req, WorkerRequest::Shutdown);
        let resp = handle(&mut session, req);
        let frame = encode_framed(KIND_RESPONSE, &resp)?;
        output.write_all(&frame)?;
        output.flush()?;
        if shutdown {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::{AttrId, Fd, Schema, Value};
    use afd_wire::Encode;

    use crate::delta::RowDelta;
    use crate::table::IncTable;
    use crate::wire::WorkerRequestRef;

    fn drive(requests: &[WorkerRequest]) -> Vec<WorkerResponse> {
        let mut input = Vec::new();
        for req in requests {
            input.extend(encode_framed(KIND_REQUEST, req).unwrap());
        }
        let mut output = Vec::new();
        run_worker(input.as_slice(), &mut output).expect("worker runs");
        let mut resps = Vec::new();
        let mut cursor = std::io::Cursor::new(output);
        while let StreamFrame::Frame(kind, payload) =
            read_frame_from(&mut cursor).expect("well-formed output")
        {
            assert_eq!(kind, KIND_RESPONSE);
            resps.push(WorkerResponse::decode_exact(&payload).expect("response decodes"));
        }
        resps
    }

    fn row(x: i64, y: i64) -> Vec<Value> {
        vec![Value::Int(x), Value::Int(y)]
    }

    #[test]
    fn worker_tracks_a_session_and_ships_state() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let resps = drive(&[
            WorkerRequest::Init(schema.clone()),
            WorkerRequest::Subscribe(fd.clone()),
            WorkerRequest::Apply(RowDelta::insert_only([
                row(1, 10),
                row(1, 10),
                row(2, 20),
                row(1, 11),
            ])),
            WorkerRequest::Snapshot,
            WorkerRequest::Compact,
            WorkerRequest::Shutdown,
        ]);
        assert_eq!(resps.len(), 6);
        assert_eq!(resps[0], WorkerResponse::Ok);
        // The shipped state matches a local session fed the same data.
        let mut local = StreamSession::new(schema);
        let cid = local.subscribe(fd).unwrap();
        local
            .apply(&RowDelta::insert_only([
                row(1, 10),
                row(1, 10),
                row(2, 20),
                row(1, 11),
            ]))
            .unwrap();
        match &resps[2] {
            WorkerResponse::Applied(state) => {
                assert_eq!(state.n_live, 4);
                assert_eq!(&state.candidates[cid].table, local.table(cid));
                assert_eq!(state.candidates[cid].y_keys.len(), local.n_y_side_ids(cid));
                assert!(state.candidates[cid]
                    .table
                    .scores()
                    .bits_eq(&local.scores(cid)));
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        match &resps[3] {
            WorkerResponse::Snapshot(rel) => assert_eq!(rel.n_rows(), 4),
            other => panic!("expected Snapshot, got {other:?}"),
        }
        match &resps[4] {
            WorkerResponse::Compacted { report, state } => {
                assert_eq!(report.n_live, 4);
                assert_eq!(state.candidates.len(), 1);
            }
            other => panic!("expected Compacted, got {other:?}"),
        }
        assert_eq!(resps[5], WorkerResponse::Ok);
    }

    #[test]
    fn request_level_errors_are_answered_not_fatal() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let resps = drive(&[
            // Before Init: answered with a typed error, loop continues.
            WorkerRequest::Snapshot,
            WorkerRequest::Init(schema),
            // Out-of-schema FD: typed error, session stays usable.
            WorkerRequest::Subscribe(Fd::linear(AttrId(0), AttrId(9))),
            WorkerRequest::Apply(RowDelta::insert_only([row(1, 1)])),
        ]);
        assert!(matches!(
            resps[0],
            WorkerResponse::Err(StreamError::Transport(_))
        ));
        assert_eq!(resps[1], WorkerResponse::Ok);
        assert!(matches!(
            resps[2],
            WorkerResponse::Err(StreamError::UnknownAttr(9))
        ));
        assert!(matches!(&resps[3], WorkerResponse::Applied(s) if s.n_live == 1));
    }

    #[test]
    fn eof_mid_stream_is_clean_exit_corrupt_frame_is_not() {
        // Clean EOF.
        let mut out = Vec::new();
        run_worker(&[][..], &mut out).expect("empty stream is a clean exit");
        assert!(out.is_empty());
        // Corrupt frame: typed transport failure.
        let mut frame = encode_framed(
            KIND_REQUEST,
            &WorkerRequestRef::Init(&Schema::new(["A"]).unwrap()),
        )
        .unwrap();
        let mid = frame.len() / 2;
        frame[mid] ^= 0x10;
        let mut out = Vec::new();
        assert!(run_worker(frame.as_slice(), &mut out).is_err());
    }

    #[test]
    fn shipped_tables_merge_bit_identically() {
        // The end-to-end wire property on the worker loop alone: state
        // shipped through encode/decode merges exactly like local state.
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let delta = RowDelta::insert_only([row(1, 10), row(2, 20), row(1, 11)]);
        let resps = drive(&[
            WorkerRequest::Init(schema.clone()),
            WorkerRequest::Subscribe(fd.clone()),
            WorkerRequest::Apply(delta.clone()),
        ]);
        let WorkerResponse::Applied(state) = &resps[2] else {
            panic!("expected Applied");
        };
        let mut local = StreamSession::new(schema);
        let cid = local.subscribe(fd).unwrap();
        local.apply(&delta).unwrap();
        let y_map: Vec<u32> = (0..local.n_y_side_ids(cid) as u32).collect();
        let from_wire = IncTable::merged_scores([(&state.candidates[cid].table, y_map.as_slice())]);
        let from_local = IncTable::merged_scores([(local.table(cid), y_map.as_slice())]);
        assert!(from_wire.bits_eq(&from_local));
        // Byte-level determinism: re-encoding the shipped table yields
        // the same canonical bytes.
        assert_eq!(
            state.candidates[cid].table.encode_to_vec(),
            local.table(cid).encode_to_vec()
        );
    }
}
