//! The shard-worker loop: one [`StreamSession`] driven by wire frames.
//!
//! `afd shard-worker` calls [`run_worker`] over its stdin/stdout; a
//! [`crate::ProcessShard`] on the coordinator side speaks the other end.
//! The loop is strict request/response — read one [`WorkerRequest`]
//! frame, act, write exactly one [`WorkerResponse`] frame — and exits
//! cleanly on `Shutdown` or a closed stdin (the coordinator dropping the
//! shard). Request-level failures (an FD outside the schema, a
//! compaction divergence) are *answered* as typed
//! [`WorkerResponse::Err`]s; only transport-level failures (corrupt
//! frames, broken pipes) abort the worker.

use std::io::{Read, Write};

use afd_wire::{encode_framed, read_frame_from, Decode, FrameReadError, StreamFrame};

use crate::delta::{StreamError, TransportError};
use crate::fault::{WorkerFault, WorkerFaultKind, AFD_WORKER_FAULTS_ENV};
use crate::session::StreamSession;
use crate::wire::{
    CandidateState, ShardState, WorkerRequest, WorkerResponse, KIND_REQUEST, KIND_RESPONSE,
};

/// The full coordinator-visible state of a worker's session: live row
/// count plus every candidate's table and Y side keys.
pub fn shard_state(session: &StreamSession) -> ShardState {
    ShardState {
        n_live: session.relation().n_live() as u64,
        candidates: (0..session.n_candidates())
            .map(|cid| CandidateState {
                table: session.table(cid).clone(),
                y_keys: (0..session.n_y_side_ids(cid))
                    .map(|id| session.y_side_values(cid, id as u32))
                    .collect(),
            })
            .collect(),
    }
}

fn handle(session: &mut Option<StreamSession>, req: WorkerRequest) -> WorkerResponse {
    match req {
        WorkerRequest::Init(schema) => {
            *session = Some(StreamSession::new(schema));
            WorkerResponse::Ok
        }
        WorkerRequest::Shutdown => WorkerResponse::Ok,
        other => {
            let Some(session) = session.as_mut() else {
                return WorkerResponse::Err(StreamError::Transport(TransportError::decode(
                    "request before Init",
                )));
            };
            match other {
                WorkerRequest::Subscribe(fd) => match session.subscribe(fd) {
                    Ok(cid) => WorkerResponse::Subscribed {
                        cid: cid as u32,
                        state: shard_state(session),
                    },
                    Err(e) => WorkerResponse::Err(e),
                },
                WorkerRequest::Apply(delta) => match session.apply(&delta) {
                    Ok(_) => WorkerResponse::Applied(shard_state(session)),
                    Err(e) => WorkerResponse::Err(e),
                },
                WorkerRequest::Snapshot => WorkerResponse::Snapshot(session.relation().snapshot()),
                WorkerRequest::Compact => match session.compact() {
                    Ok(report) => WorkerResponse::Compacted {
                        report,
                        state: shard_state(session),
                    },
                    Err(e) => WorkerResponse::Err(e),
                },
                WorkerRequest::Init(_) | WorkerRequest::Shutdown => unreachable!("handled above"),
            }
        }
    }
}

/// Runs the worker loop until `Shutdown`, EOF on `input`, or a transport
/// failure.
///
/// Inspects [`AFD_WORKER_FAULTS_ENV`] for an injected fault — the
/// deterministic misbehaviour hook the recovery tests drive real child
/// processes with (see [`crate::fault`]).
///
/// # Errors
/// [`FrameReadError`] when a frame fails checksum/decode verification or
/// the pipes break — request-level errors are answered in-band instead.
pub fn run_worker(input: impl Read, output: impl Write) -> Result<(), FrameReadError> {
    let fault = std::env::var(AFD_WORKER_FAULTS_ENV)
        .ok()
        .and_then(|spec| WorkerFault::parse(&spec));
    run_worker_with_fault(input, output, fault)
}

/// [`run_worker`] with an explicit injected fault (`None` = behave).
///
/// The fault fires while serving the `site`-th request (1-based,
/// counting every request frame read): `Kill` exits without responding
/// (the coordinator sees EOF), `Truncate` writes half the response
/// frame then exits, `Garbage` writes non-frame bytes then exits, and
/// `Stall` sleeps before responding normally. Each firing announces
/// itself on stderr so the coordinator's stderr capture has a line to
/// attach.
///
/// # Errors
/// [`FrameReadError`] as for [`run_worker`].
pub fn run_worker_with_fault(
    mut input: impl Read,
    mut output: impl Write,
    mut fault: Option<WorkerFault>,
) -> Result<(), FrameReadError> {
    let mut session: Option<StreamSession> = None;
    let mut requests: u64 = 0;
    loop {
        let (kind, payload) = match read_frame_from(&mut input)? {
            StreamFrame::Frame(kind, payload) => (kind, payload),
            StreamFrame::Eof => return Ok(()),
        };
        if kind != KIND_REQUEST {
            return Err(FrameReadError::Decode(
                afd_wire::DecodeError::UnknownMessage { kind },
            ));
        }
        requests += 1;
        let tripped = match fault {
            Some(f) if requests >= f.site => {
                fault = None;
                eprintln!(
                    "afd-worker: injected fault {} firing at request {requests}",
                    f.to_env()
                );
                Some(f.kind)
            }
            _ => None,
        };
        if matches!(tripped, Some(WorkerFaultKind::Kill)) {
            // Exit without responding: the coordinator sees EOF, as if
            // the process had been killed mid-request.
            return Ok(());
        }
        let req = WorkerRequest::decode_exact(&payload)?;
        let shutdown = matches!(req, WorkerRequest::Shutdown);
        let resp = handle(&mut session, req);
        let frame = encode_framed(KIND_RESPONSE, &resp)?;
        match tripped {
            Some(WorkerFaultKind::Truncate) => {
                output.write_all(&frame[..frame.len() / 2])?;
                output.flush()?;
                return Ok(());
            }
            Some(WorkerFaultKind::Garbage) => {
                output.write_all(b"this is definitely not an AFDW frame")?;
                output.flush()?;
                return Ok(());
            }
            Some(WorkerFaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            Some(WorkerFaultKind::Kill) | None => {}
        }
        output.write_all(&frame)?;
        output.flush()?;
        if shutdown {
            return Ok(());
        }
    }
}

/// Serves the worker protocol over TCP: one [`run_worker_with_fault`]
/// session per accepted connection, each on its own thread (so a
/// stalled or mid-teardown session never blocks a supervisor's
/// reconnect from being served).
///
/// Connection = incarnation: a dropped connection ends its session
/// exactly like a killed child process ends a stdio worker's, and the
/// coordinator's respawn-restore-replay recovery applies unchanged —
/// the fresh connection starts from `Init` and is rebuilt from the
/// checkpoint + delta log.
///
/// Inspects [`AFD_WORKER_FAULTS_ENV`] **once** at entry and arms the
/// fault on the *first* connection only, mirroring the stdio
/// supervisor's strip-on-respawn rule: an injected fault fires at most
/// once per plan, not once per incarnation.
///
/// Runs until the listener itself fails (callers that want to stop it
/// kill the process; every session is connection-scoped).
///
/// # Errors
/// The `accept(2)` failure that ended the loop.
pub fn run_worker_listener(listener: std::net::TcpListener) -> std::io::Error {
    let fault = std::sync::Mutex::new(
        std::env::var(AFD_WORKER_FAULTS_ENV)
            .ok()
            .and_then(|spec| WorkerFault::parse(&spec)),
    );
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) => return e,
        };
        let fault = fault.lock().ok().and_then(|mut f| f.take());
        std::thread::spawn(move || {
            let _ = stream.set_nodelay(true);
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            // Transport-level failures (the peer vanished, a corrupt
            // frame) end this session; the listener keeps accepting.
            if let Err(e) = run_worker_with_fault(std::io::BufReader::new(read_half), stream, fault)
            {
                eprintln!("afd-worker: connection ended: {e}");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::{AttrId, Fd, Schema, Value};
    use afd_wire::Encode;

    use crate::delta::RowDelta;
    use crate::table::IncTable;
    use crate::wire::WorkerRequestRef;

    fn drive(requests: &[WorkerRequest]) -> Vec<WorkerResponse> {
        let mut input = Vec::new();
        for req in requests {
            input.extend(encode_framed(KIND_REQUEST, req).unwrap());
        }
        let mut output = Vec::new();
        run_worker(input.as_slice(), &mut output).expect("worker runs");
        let mut resps = Vec::new();
        let mut cursor = std::io::Cursor::new(output);
        while let StreamFrame::Frame(kind, payload) =
            read_frame_from(&mut cursor).expect("well-formed output")
        {
            assert_eq!(kind, KIND_RESPONSE);
            resps.push(WorkerResponse::decode_exact(&payload).expect("response decodes"));
        }
        resps
    }

    fn row(x: i64, y: i64) -> Vec<Value> {
        vec![Value::Int(x), Value::Int(y)]
    }

    #[test]
    fn worker_tracks_a_session_and_ships_state() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let resps = drive(&[
            WorkerRequest::Init(schema.clone()),
            WorkerRequest::Subscribe(fd.clone()),
            WorkerRequest::Apply(RowDelta::insert_only([
                row(1, 10),
                row(1, 10),
                row(2, 20),
                row(1, 11),
            ])),
            WorkerRequest::Snapshot,
            WorkerRequest::Compact,
            WorkerRequest::Shutdown,
        ]);
        assert_eq!(resps.len(), 6);
        assert_eq!(resps[0], WorkerResponse::Ok);
        // The shipped state matches a local session fed the same data.
        let mut local = StreamSession::new(schema);
        let cid = local.subscribe(fd).unwrap();
        local
            .apply(&RowDelta::insert_only([
                row(1, 10),
                row(1, 10),
                row(2, 20),
                row(1, 11),
            ]))
            .unwrap();
        match &resps[2] {
            WorkerResponse::Applied(state) => {
                assert_eq!(state.n_live, 4);
                assert_eq!(&state.candidates[cid].table, local.table(cid));
                assert_eq!(state.candidates[cid].y_keys.len(), local.n_y_side_ids(cid));
                assert!(state.candidates[cid]
                    .table
                    .scores()
                    .bits_eq(&local.scores(cid)));
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        match &resps[3] {
            WorkerResponse::Snapshot(rel) => assert_eq!(rel.n_rows(), 4),
            other => panic!("expected Snapshot, got {other:?}"),
        }
        match &resps[4] {
            WorkerResponse::Compacted { report, state } => {
                assert_eq!(report.n_live, 4);
                assert_eq!(state.candidates.len(), 1);
            }
            other => panic!("expected Compacted, got {other:?}"),
        }
        assert_eq!(resps[5], WorkerResponse::Ok);
    }

    #[test]
    fn request_level_errors_are_answered_not_fatal() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let resps = drive(&[
            // Before Init: answered with a typed error, loop continues.
            WorkerRequest::Snapshot,
            WorkerRequest::Init(schema),
            // Out-of-schema FD: typed error, session stays usable.
            WorkerRequest::Subscribe(Fd::linear(AttrId(0), AttrId(9))),
            WorkerRequest::Apply(RowDelta::insert_only([row(1, 1)])),
        ]);
        assert!(matches!(
            resps[0],
            WorkerResponse::Err(StreamError::Transport(_))
        ));
        assert_eq!(resps[1], WorkerResponse::Ok);
        assert!(matches!(
            resps[2],
            WorkerResponse::Err(StreamError::UnknownAttr(9))
        ));
        assert!(matches!(&resps[3], WorkerResponse::Applied(s) if s.n_live == 1));
    }

    #[test]
    fn eof_mid_stream_is_clean_exit_corrupt_frame_is_not() {
        // Clean EOF.
        let mut out = Vec::new();
        run_worker(&[][..], &mut out).expect("empty stream is a clean exit");
        assert!(out.is_empty());
        // Corrupt frame: typed transport failure.
        let mut frame = encode_framed(
            KIND_REQUEST,
            &WorkerRequestRef::Init(&Schema::new(["A"]).unwrap()),
        )
        .unwrap();
        let mid = frame.len() / 2;
        frame[mid] ^= 0x10;
        let mut out = Vec::new();
        assert!(run_worker(frame.as_slice(), &mut out).is_err());
    }

    fn fault_script() -> Vec<u8> {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let mut input = Vec::new();
        for req in [
            WorkerRequest::Init(schema),
            WorkerRequest::Subscribe(fd),
            WorkerRequest::Apply(RowDelta::insert_only([row(1, 10), row(2, 20)])),
            WorkerRequest::Snapshot,
        ] {
            input.extend(encode_framed(KIND_REQUEST, &req).unwrap());
        }
        input
    }

    fn response_frames(output: &[u8]) -> (usize, Option<FrameReadError>) {
        let mut cursor = std::io::Cursor::new(output);
        let mut n = 0;
        loop {
            match read_frame_from(&mut cursor) {
                Ok(StreamFrame::Frame(_, _)) => n += 1,
                Ok(StreamFrame::Eof) => return (n, None),
                Err(e) => return (n, Some(e)),
            }
        }
    }

    #[test]
    fn injected_kill_exits_without_responding() {
        let mut out = Vec::new();
        let fault = crate::fault::WorkerFault {
            site: 3,
            kind: crate::fault::WorkerFaultKind::Kill,
        };
        run_worker_with_fault(fault_script().as_slice(), &mut out, Some(fault))
            .expect("kill is a clean early exit");
        let (n, err) = response_frames(&out);
        assert_eq!(n, 2, "responses before the fault site only");
        assert!(err.is_none(), "output ends cleanly at EOF");
    }

    #[test]
    fn injected_truncation_cuts_the_response_frame() {
        let mut out = Vec::new();
        let fault = crate::fault::WorkerFault {
            site: 2,
            kind: crate::fault::WorkerFaultKind::Truncate,
        };
        run_worker_with_fault(fault_script().as_slice(), &mut out, Some(fault)).expect("exits");
        let (n, err) = response_frames(&out);
        assert_eq!(n, 1);
        assert!(
            err.is_some(),
            "the truncated frame must not parse as clean EOF"
        );
    }

    #[test]
    fn injected_garbage_fails_frame_verification() {
        let mut out = Vec::new();
        let fault = crate::fault::WorkerFault {
            site: 1,
            kind: crate::fault::WorkerFaultKind::Garbage,
        };
        run_worker_with_fault(fault_script().as_slice(), &mut out, Some(fault)).expect("exits");
        let (n, err) = response_frames(&out);
        assert_eq!(n, 0);
        assert!(matches!(err, Some(FrameReadError::Decode(_))), "{err:?}");
    }

    #[test]
    fn injected_stall_delays_but_answers() {
        let mut out = Vec::new();
        let fault = crate::fault::WorkerFault {
            site: 2,
            kind: crate::fault::WorkerFaultKind::Stall { millis: 1 },
        };
        run_worker_with_fault(fault_script().as_slice(), &mut out, Some(fault))
            .expect("stall only delays");
        let (n, err) = response_frames(&out);
        assert_eq!(n, 4, "every request is answered after the stall");
        assert!(err.is_none());
    }

    #[test]
    fn shipped_tables_merge_bit_identically() {
        // The end-to-end wire property on the worker loop alone: state
        // shipped through encode/decode merges exactly like local state.
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fd = Fd::linear(AttrId(0), AttrId(1));
        let delta = RowDelta::insert_only([row(1, 10), row(2, 20), row(1, 11)]);
        let resps = drive(&[
            WorkerRequest::Init(schema.clone()),
            WorkerRequest::Subscribe(fd.clone()),
            WorkerRequest::Apply(delta.clone()),
        ]);
        let WorkerResponse::Applied(state) = &resps[2] else {
            panic!("expected Applied");
        };
        let mut local = StreamSession::new(schema);
        let cid = local.subscribe(fd).unwrap();
        local.apply(&delta).unwrap();
        let y_map: Vec<u32> = (0..local.n_y_side_ids(cid) as u32).collect();
        let from_wire = IncTable::merged_scores([(&state.candidates[cid].table, y_map.as_slice())]);
        let from_local = IncTable::merged_scores([(local.table(cid), y_map.as_slice())]);
        assert!(from_wire.bits_eq(&from_local));
        // Byte-level determinism: re-encoding the shipped table yields
        // the same canonical bytes.
        assert_eq!(
            state.candidates[cid].table.encode_to_vec(),
            local.table(cid).encode_to_vec()
        );
    }
}
