//! Row deltas, a deterministic churn generator, and the stream engine's
//! error type.

use afd_relation::{Relation, RelationError, Value};

/// Global id of an inserted row: its position in the insertion log.
///
/// Row ids are assigned densely in arrival order and never reused while a
/// [`crate::StreamSession`] is live; compaction renumbers them (dropping
/// tombstones) and reports the mapping via
/// [`crate::CompactionReport::rows_dropped`].
pub type RowId = u32;

/// A batch of changes to an incrementally maintained relation: tombstone
/// deletes of previously inserted rows plus newly arriving rows.
///
/// Deletes refer to rows that existed *before* the delta (a row cannot be
/// inserted and deleted by the same delta), and are applied first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowDelta {
    /// Rows to append, each matching the schema's arity.
    pub inserts: Vec<Vec<Value>>,
    /// Ids of live rows to tombstone.
    pub deletes: Vec<RowId>,
}

impl RowDelta {
    /// An empty delta.
    pub fn new() -> Self {
        RowDelta::default()
    }

    /// A pure-insert delta.
    pub fn insert_only(rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        RowDelta {
            inserts: rows.into_iter().collect(),
            deletes: Vec::new(),
        }
    }

    /// A pure-delete delta.
    pub fn delete_only(rows: impl IntoIterator<Item = RowId>) -> Self {
        RowDelta {
            inserts: Vec::new(),
            deletes: rows.into_iter().collect(),
        }
    }

    /// Number of individual change events in the delta.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// `true` iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Deterministic churn generator for benches and experiments.
///
/// Each planned delta holds `k/2` deletes of currently live rows plus
/// `k − k/2` re-inserts of `fixture` rows, so the live size stays
/// constant while the engine is exercised. The planner mirrors the id
/// assignment of a [`crate::StreamSession`] built over `fixture` with
/// **all rows live** (e.g. via `StreamSession::from_relation`); the
/// deltas it emits are valid against exactly that session, applied in
/// order with no compaction in between (compaction renumbers ids —
/// build a fresh planner from the compacted snapshot afterwards).
#[derive(Debug, Clone)]
pub struct ChurnPlanner<'a> {
    fixture: &'a Relation,
    live: Vec<RowId>,
    next_id: RowId,
    cursor: usize,
}

impl<'a> ChurnPlanner<'a> {
    /// A planner over `fixture` (which must be non-empty).
    ///
    /// # Panics
    /// Panics if `fixture` has no rows (nothing to churn).
    pub fn new(fixture: &'a Relation) -> Self {
        assert!(!fixture.is_empty(), "cannot churn an empty fixture");
        ChurnPlanner {
            fixture,
            live: (0..fixture.n_rows() as RowId).collect(),
            next_id: fixture.n_rows() as RowId,
            cursor: 0,
        }
    }

    /// The next delta of `k` events (`k/2` deletes, `k − k/2` inserts).
    ///
    /// # Panics
    /// Panics if the delta would delete more rows than are live.
    pub fn next_delta(&mut self, k: usize) -> RowDelta {
        assert!(
            k / 2 <= self.live.len(),
            "delta wants {} deletes but only {} rows are live",
            k / 2,
            self.live.len()
        );
        let mut delta = RowDelta::new();
        for i in 0..k / 2 {
            let pick = (self.cursor * 7 + i * 13) % self.live.len();
            delta.deletes.push(self.live.swap_remove(pick));
        }
        for _ in 0..k - k / 2 {
            let src = self.cursor % self.fixture.n_rows();
            delta.inserts.push(self.fixture.row(src));
            self.live.push(self.next_id);
            self.next_id += 1;
            self.cursor += 1;
        }
        delta
    }

    /// Plans `steps` deltas of `k` events each.
    pub fn plan(fixture: &'a Relation, steps: usize, k: usize) -> Vec<RowDelta> {
        let mut planner = ChurnPlanner::new(fixture);
        (0..steps).map(|_| planner.next_delta(k)).collect()
    }
}

/// A structured transport failure of a process-backed shard: *which*
/// shard, *which* protocol step, and the worker's last stderr lines.
///
/// This replaces the old free-form `Transport(String)`: the supervisor
/// dispatches on the kind (every kind feeds the same respawn/replay
/// recovery path), and the captured stderr tail makes a worker panic
/// diagnosable from the coordinator's error instead of being lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// Shard index the failure struck, when raised in a sharded context
    /// (`None` worker-side or before a shard identity is assigned).
    pub shard: Option<u32>,
    /// The protocol step that failed.
    pub kind: TransportErrorKind,
    /// The worker's last captured stderr lines (oldest first), empty
    /// when nothing was captured or the backend has no stderr.
    pub stderr: Vec<String>,
}

/// The protocol step a [`TransportError`] failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// The worker process could not be spawned (or respawned).
    Spawn(String),
    /// Writing a request frame to the worker's stdin failed.
    Write(String),
    /// Reading a response failed: the pipe closed mid-frame or errored
    /// (a killed or crashed worker surfaces here).
    Read(String),
    /// The worker did not answer within the request deadline — a hung
    /// worker is indistinguishable from a dead one past this point.
    Timeout {
        /// The deadline that elapsed, in milliseconds.
        millis: u64,
    },
    /// The bytes arrived but failed frame/codec verification (corrupt
    /// frame, unexpected frame kind, undecodable response).
    Decode(String),
}

impl TransportError {
    /// A bare error of the given kind (no shard attribution, no
    /// stderr).
    pub fn of_kind(kind: TransportErrorKind) -> Self {
        TransportError {
            shard: None,
            kind,
            stderr: Vec::new(),
        }
    }

    /// A spawn-step failure.
    pub fn spawn(msg: impl Into<String>) -> Self {
        Self::of_kind(TransportErrorKind::Spawn(msg.into()))
    }

    /// A write-step failure.
    pub fn write(msg: impl Into<String>) -> Self {
        Self::of_kind(TransportErrorKind::Write(msg.into()))
    }

    /// A read-step failure.
    pub fn read(msg: impl Into<String>) -> Self {
        Self::of_kind(TransportErrorKind::Read(msg.into()))
    }

    /// A deadline expiry after `millis` milliseconds.
    pub fn timeout(millis: u64) -> Self {
        Self::of_kind(TransportErrorKind::Timeout { millis })
    }

    /// A frame/codec verification failure.
    pub fn decode(msg: impl Into<String>) -> Self {
        Self::of_kind(TransportErrorKind::Decode(msg.into()))
    }

    /// Attributes the error to a shard index.
    #[must_use]
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Attaches the worker's captured stderr tail.
    #[must_use]
    pub fn with_stderr(mut self, lines: Vec<String>) -> Self {
        self.stderr = lines;
        self
    }
}

impl std::fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportErrorKind::Spawn(msg) => write!(f, "spawn: {msg}"),
            TransportErrorKind::Write(msg) => write!(f, "write: {msg}"),
            TransportErrorKind::Read(msg) => write!(f, "read: {msg}"),
            TransportErrorKind::Timeout { millis } => {
                write!(f, "request deadline exceeded after {millis} ms")
            }
            TransportErrorKind::Decode(msg) => write!(f, "decode: {msg}"),
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.shard {
            Some(s) => write!(f, "shard {s}: {}", self.kind)?,
            None => write!(f, "{}", self.kind)?,
        }
        if !self.stderr.is_empty() {
            write!(f, "; worker stderr tail: {}", self.stderr.join(" | "))?;
        }
        Ok(())
    }
}

/// Errors of the incremental engine.
///
/// `apply` validates a whole delta before mutating anything, so a returned
/// error leaves the session exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An insert row's arity differs from the schema's.
    Arity {
        /// Schema arity.
        expected: usize,
        /// The offending row's arity.
        got: usize,
    },
    /// A delete names a row id that was never inserted.
    UnknownRow(RowId),
    /// A delete names a row that is already tombstoned (possibly by an
    /// earlier entry of the same delta).
    AlreadyDeleted(RowId),
    /// An FD references an attribute outside the schema.
    UnknownAttr(u32),
    /// Invalid sharding configuration: zero shards, a shard key outside
    /// the schema, or a subscription whose LHS does not contain the shard
    /// key (its X-groups would straddle shards and the merged aggregates
    /// would be wrong).
    ShardConfig(String),
    /// Compaction found a divergence between the incremental state and a
    /// batch rebuild — an engine bug surfaced loudly rather than served.
    Diverged(String),
    /// A process-backed shard's transport failed: the worker died or
    /// hung, its pipe closed mid-frame, or its bytes failed frame/codec
    /// verification. Recovery-enabled sessions respawn and replay the
    /// shard transparently; this error surfaces only once the retry
    /// budget is exhausted (or the backend cannot be respawned).
    Transport(TransportError),
    /// The session was poisoned by an earlier unrecoverable failure:
    /// score reads still serve the last consistent state, but mutation
    /// is refused until the session is rebuilt (e.g. from a snapshot).
    Poisoned(String),
    /// An underlying relation error.
    Relation(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Arity { expected, got } => {
                write!(f, "insert arity mismatch: expected {expected}, got {got}")
            }
            StreamError::UnknownRow(r) => write!(f, "delete of unknown row id {r}"),
            StreamError::AlreadyDeleted(r) => write!(f, "row id {r} is already deleted"),
            StreamError::UnknownAttr(a) => write!(f, "attribute #{a} outside the schema"),
            StreamError::ShardConfig(msg) => write!(f, "shard configuration: {msg}"),
            StreamError::Diverged(what) => {
                write!(f, "incremental state diverged from batch rebuild: {what}")
            }
            StreamError::Transport(e) => write!(f, "shard worker transport: {e}"),
            StreamError::Poisoned(why) => write!(
                f,
                "session poisoned ({why}); reads serve the last consistent \
                 state, rebuild the session to resume mutation"
            ),
            StreamError::Relation(e) => write!(f, "relation error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<RelationError> for StreamError {
    fn from(e: RelationError) -> Self {
        StreamError::Relation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_builders() {
        let d = RowDelta::insert_only([vec![Value::Int(1)]]);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        let d = RowDelta::delete_only([3, 4]);
        assert_eq!(d.len(), 2);
        assert!(RowDelta::new().is_empty());
    }

    #[test]
    fn churn_plan_is_valid_and_size_preserving() {
        let fixture = Relation::from_pairs((0..32).map(|i| (i % 4, i % 3)));
        let deltas = ChurnPlanner::plan(&fixture, 5, 8);
        assert_eq!(deltas.len(), 5);
        let mut session = crate::StreamSession::from_relation(fixture);
        for delta in &deltas {
            assert_eq!(delta.deletes.len(), 4);
            assert_eq!(delta.inserts.len(), 4);
            session.apply(delta).expect("planned deltas are valid");
            assert_eq!(session.relation().n_live(), 32);
        }
    }

    #[test]
    #[should_panic(expected = "empty fixture")]
    fn churn_planner_rejects_empty_fixture() {
        let empty = Relation::from_pairs(std::iter::empty());
        ChurnPlanner::new(&empty);
    }

    #[test]
    fn errors_render() {
        let e = StreamError::Arity {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        assert!(StreamError::UnknownRow(7).to_string().contains('7'));
        assert!(StreamError::Diverged("pli".into())
            .to_string()
            .contains("pli"));
        assert!(StreamError::ShardConfig("no key".into())
            .to_string()
            .contains("no key"));
        assert!(StreamError::Poisoned("retry budget exhausted".into())
            .to_string()
            .contains("retry budget exhausted"));
    }

    #[test]
    fn transport_errors_render_shard_kind_and_stderr() {
        let e = TransportError::timeout(250).with_shard(3);
        let s = e.to_string();
        assert!(s.contains("shard 3"), "{s}");
        assert!(s.contains("250 ms"), "{s}");

        let e = TransportError::read("pipe closed")
            .with_shard(1)
            .with_stderr(vec!["thread panicked".into()]);
        let s = StreamError::Transport(e).to_string();
        assert!(s.contains("read: pipe closed"), "{s}");
        assert!(s.contains("thread panicked"), "{s}");

        assert!(TransportError::spawn("no such file")
            .to_string()
            .contains("spawn: no such file"));
        assert!(TransportError::write("broken pipe")
            .to_string()
            .contains("write: broken pipe"));
        assert!(TransportError::decode("bad magic")
            .to_string()
            .contains("decode: bad magic"));
    }
}
