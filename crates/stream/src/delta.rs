//! Row deltas, a deterministic churn generator, and the stream engine's
//! error type.

use afd_relation::{Relation, RelationError, Value};

/// Global id of an inserted row: its position in the insertion log.
///
/// Row ids are assigned densely in arrival order and never reused while a
/// [`crate::StreamSession`] is live; compaction renumbers them (dropping
/// tombstones) and reports the mapping via
/// [`crate::CompactionReport::rows_dropped`].
pub type RowId = u32;

/// A batch of changes to an incrementally maintained relation: tombstone
/// deletes of previously inserted rows plus newly arriving rows.
///
/// Deletes refer to rows that existed *before* the delta (a row cannot be
/// inserted and deleted by the same delta), and are applied first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowDelta {
    /// Rows to append, each matching the schema's arity.
    pub inserts: Vec<Vec<Value>>,
    /// Ids of live rows to tombstone.
    pub deletes: Vec<RowId>,
}

impl RowDelta {
    /// An empty delta.
    pub fn new() -> Self {
        RowDelta::default()
    }

    /// A pure-insert delta.
    pub fn insert_only(rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        RowDelta {
            inserts: rows.into_iter().collect(),
            deletes: Vec::new(),
        }
    }

    /// A pure-delete delta.
    pub fn delete_only(rows: impl IntoIterator<Item = RowId>) -> Self {
        RowDelta {
            inserts: Vec::new(),
            deletes: rows.into_iter().collect(),
        }
    }

    /// Number of individual change events in the delta.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// `true` iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Deterministic churn generator for benches and experiments.
///
/// Each planned delta holds `k/2` deletes of currently live rows plus
/// `k − k/2` re-inserts of `fixture` rows, so the live size stays
/// constant while the engine is exercised. The planner mirrors the id
/// assignment of a [`crate::StreamSession`] built over `fixture` with
/// **all rows live** (e.g. via `StreamSession::from_relation`); the
/// deltas it emits are valid against exactly that session, applied in
/// order with no compaction in between (compaction renumbers ids —
/// build a fresh planner from the compacted snapshot afterwards).
#[derive(Debug, Clone)]
pub struct ChurnPlanner<'a> {
    fixture: &'a Relation,
    live: Vec<RowId>,
    next_id: RowId,
    cursor: usize,
}

impl<'a> ChurnPlanner<'a> {
    /// A planner over `fixture` (which must be non-empty).
    ///
    /// # Panics
    /// Panics if `fixture` has no rows (nothing to churn).
    pub fn new(fixture: &'a Relation) -> Self {
        assert!(!fixture.is_empty(), "cannot churn an empty fixture");
        ChurnPlanner {
            fixture,
            live: (0..fixture.n_rows() as RowId).collect(),
            next_id: fixture.n_rows() as RowId,
            cursor: 0,
        }
    }

    /// The next delta of `k` events (`k/2` deletes, `k − k/2` inserts).
    ///
    /// # Panics
    /// Panics if the delta would delete more rows than are live.
    pub fn next_delta(&mut self, k: usize) -> RowDelta {
        assert!(
            k / 2 <= self.live.len(),
            "delta wants {} deletes but only {} rows are live",
            k / 2,
            self.live.len()
        );
        let mut delta = RowDelta::new();
        for i in 0..k / 2 {
            let pick = (self.cursor * 7 + i * 13) % self.live.len();
            delta.deletes.push(self.live.swap_remove(pick));
        }
        for _ in 0..k - k / 2 {
            let src = self.cursor % self.fixture.n_rows();
            delta.inserts.push(self.fixture.row(src));
            self.live.push(self.next_id);
            self.next_id += 1;
            self.cursor += 1;
        }
        delta
    }

    /// Plans `steps` deltas of `k` events each.
    pub fn plan(fixture: &'a Relation, steps: usize, k: usize) -> Vec<RowDelta> {
        let mut planner = ChurnPlanner::new(fixture);
        (0..steps).map(|_| planner.next_delta(k)).collect()
    }
}

/// Errors of the incremental engine.
///
/// `apply` validates a whole delta before mutating anything, so a returned
/// error leaves the session exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An insert row's arity differs from the schema's.
    Arity {
        /// Schema arity.
        expected: usize,
        /// The offending row's arity.
        got: usize,
    },
    /// A delete names a row id that was never inserted.
    UnknownRow(RowId),
    /// A delete names a row that is already tombstoned (possibly by an
    /// earlier entry of the same delta).
    AlreadyDeleted(RowId),
    /// An FD references an attribute outside the schema.
    UnknownAttr(u32),
    /// Invalid sharding configuration: zero shards, a shard key outside
    /// the schema, or a subscription whose LHS does not contain the shard
    /// key (its X-groups would straddle shards and the merged aggregates
    /// would be wrong).
    ShardConfig(String),
    /// Compaction found a divergence between the incremental state and a
    /// batch rebuild — an engine bug surfaced loudly rather than served.
    Diverged(String),
    /// A process-backed shard's transport failed: the worker died, its
    /// pipe closed mid-frame, or its bytes failed frame/codec
    /// verification. The coordinator's last synced state stays readable;
    /// mutation is refused until the session is rebuilt.
    Transport(String),
    /// An underlying relation error.
    Relation(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Arity { expected, got } => {
                write!(f, "insert arity mismatch: expected {expected}, got {got}")
            }
            StreamError::UnknownRow(r) => write!(f, "delete of unknown row id {r}"),
            StreamError::AlreadyDeleted(r) => write!(f, "row id {r} is already deleted"),
            StreamError::UnknownAttr(a) => write!(f, "attribute #{a} outside the schema"),
            StreamError::ShardConfig(msg) => write!(f, "shard configuration: {msg}"),
            StreamError::Diverged(what) => {
                write!(f, "incremental state diverged from batch rebuild: {what}")
            }
            StreamError::Transport(msg) => write!(f, "shard worker transport: {msg}"),
            StreamError::Relation(e) => write!(f, "relation error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<RelationError> for StreamError {
    fn from(e: RelationError) -> Self {
        StreamError::Relation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_builders() {
        let d = RowDelta::insert_only([vec![Value::Int(1)]]);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        let d = RowDelta::delete_only([3, 4]);
        assert_eq!(d.len(), 2);
        assert!(RowDelta::new().is_empty());
    }

    #[test]
    fn churn_plan_is_valid_and_size_preserving() {
        let fixture = Relation::from_pairs((0..32).map(|i| (i % 4, i % 3)));
        let deltas = ChurnPlanner::plan(&fixture, 5, 8);
        assert_eq!(deltas.len(), 5);
        let mut session = crate::StreamSession::from_relation(fixture);
        for delta in &deltas {
            assert_eq!(delta.deletes.len(), 4);
            assert_eq!(delta.inserts.len(), 4);
            session.apply(delta).expect("planned deltas are valid");
            assert_eq!(session.relation().n_live(), 32);
        }
    }

    #[test]
    #[should_panic(expected = "empty fixture")]
    fn churn_planner_rejects_empty_fixture() {
        let empty = Relation::from_pairs(std::iter::empty());
        ChurnPlanner::new(&empty);
    }

    #[test]
    fn errors_render() {
        let e = StreamError::Arity {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        assert!(StreamError::UnknownRow(7).to_string().contains('7'));
        assert!(StreamError::Diverged("pli".into())
            .to_string()
            .contains("pli"));
        assert!(StreamError::ShardConfig("no key".into())
            .to_string()
            .contains("no key"));
    }
}
