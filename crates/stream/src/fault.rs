//! Deterministic fault injection for the shard fabric.
//!
//! Recovery code that is only exercised by real production failures is
//! recovery code that does not work. This module makes worker failure a
//! *first-class, reproducible input*:
//!
//! * [`WorkerFault`] — one injected fault: a protocol step (1-based
//!   request index) plus a [`WorkerFaultKind`] (kill, truncate a
//!   response frame, emit garbage bytes, stall past the deadline).
//! * [`AFD_WORKER_FAULTS_ENV`] — the worker-side hook: a real
//!   `afd shard-worker` process reads this environment variable and
//!   misbehaves accordingly, so integration tests inject faults into
//!   genuine child processes. The supervisor strips the variable on
//!   respawn, so a fault fires once per plan, not once per
//!   incarnation.
//! * [`FaultPlan`] — derives a single fault (site, kind, victim shard)
//!   deterministically from a seed via the in-repo `rand`, so
//!   proptests can sweep "any single fault at any protocol step" and
//!   reproduce failures from the seed alone.
//! * [`ChaosShard`] — a test/bench-only [`ShardBackend`] wrapping
//!   [`InProcShard`] that fails with the matching
//!   [`TransportErrorKind`] at the planned site and supports respawn,
//!   so supervisor logic is testable without spawning processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afd_relation::{Fd, Relation, Schema, Value};

use crate::backend::{InProcShard, ShardBackend};
use crate::delta::{RowDelta, StreamError, TransportError, TransportErrorKind};
use crate::session::CompactionReport;
use crate::table::IncTable;

/// Environment variable a real `afd shard-worker` process inspects for
/// an injected fault, e.g. `kill:3`, `truncate:2`, `garbage:1`,
/// `stall:2:400` (see [`WorkerFault::to_env`]).
pub const AFD_WORKER_FAULTS_ENV: &str = "AFD_WORKER_FAULTS";

/// How an injected fault misbehaves at its protocol step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// Exit without responding — the coordinator sees EOF (a crash).
    Kill,
    /// Write only half of the response frame, then exit — the
    /// coordinator sees a mid-frame EOF.
    Truncate,
    /// Write bytes that are not a frame, then exit — the coordinator
    /// sees a frame decode failure.
    Garbage,
    /// Sleep this many milliseconds before responding — with a shorter
    /// coordinator deadline, a hung worker.
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// One injected fault: misbehave with [`kind`](Self::kind) while
/// serving the [`site`](Self::site)-th request (1-based, counting every
/// protocol request including `Init`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// 1-based index of the request at which the fault fires.
    pub site: u64,
    /// The misbehaviour.
    pub kind: WorkerFaultKind,
}

impl WorkerFault {
    /// Renders the fault in the [`AFD_WORKER_FAULTS_ENV`] format:
    /// `kill:N` | `truncate:N` | `garbage:N` | `stall:N:MS`.
    pub fn to_env(&self) -> String {
        match self.kind {
            WorkerFaultKind::Kill => format!("kill:{}", self.site),
            WorkerFaultKind::Truncate => format!("truncate:{}", self.site),
            WorkerFaultKind::Garbage => format!("garbage:{}", self.site),
            WorkerFaultKind::Stall { millis } => format!("stall:{}:{millis}", self.site),
        }
    }

    /// Parses the [`AFD_WORKER_FAULTS_ENV`] format; `None` on anything
    /// malformed (a worker must never die because the harness typo'd).
    pub fn parse(s: &str) -> Option<WorkerFault> {
        let mut parts = s.trim().split(':');
        let kind = parts.next()?;
        let site: u64 = parts.next()?.parse().ok()?;
        if site == 0 {
            return None;
        }
        let fault = match kind {
            "kill" => WorkerFault {
                site,
                kind: WorkerFaultKind::Kill,
            },
            "truncate" => WorkerFault {
                site,
                kind: WorkerFaultKind::Truncate,
            },
            "garbage" => WorkerFault {
                site,
                kind: WorkerFaultKind::Garbage,
            },
            "stall" => {
                let millis: u64 = parts.next()?.parse().ok()?;
                WorkerFault {
                    site,
                    kind: WorkerFaultKind::Stall { millis },
                }
            }
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(fault)
    }
}

/// A deterministic single-fault plan: which shard misbehaves, how, and
/// at which protocol step — all derived from `seed` alone, so a failing
/// proptest case is reproducible from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// The victim shard index (`0..n_shards`).
    pub shard: u32,
    /// The injected fault.
    pub fault: WorkerFault,
}

impl FaultPlan {
    /// Derives a plan from `seed`: a uniform victim shard, a uniform
    /// fault site in `1..=max_site`, and one of the four kinds (stalls
    /// use `stall_ms`).
    pub fn single(seed: u64, n_shards: u32, max_site: u64, stall_ms: u64) -> FaultPlan {
        assert!(n_shards > 0, "fault plan needs at least one shard");
        assert!(max_site > 0, "fault plan needs at least one site");
        let mut rng = StdRng::seed_from_u64(seed);
        let shard = rng.gen_range(0..n_shards);
        let site = rng.gen_range(1..=max_site);
        let kind = match rng.gen_range(0..4u32) {
            0 => WorkerFaultKind::Kill,
            1 => WorkerFaultKind::Truncate,
            2 => WorkerFaultKind::Garbage,
            _ => WorkerFaultKind::Stall { millis: stall_ms },
        };
        FaultPlan {
            seed,
            shard,
            fault: WorkerFault { site, kind },
        }
    }
}

/// A fault-injecting in-process backend for supervisor tests: behaves
/// like [`InProcShard`] until the armed fault's site, then fails with
/// the matching [`TransportErrorKind`]; a
/// [`respawn`](ShardBackend::respawn) yields a fresh empty incarnation
/// exactly like a restarted worker process.
///
/// Test/bench-only by intent: it exists so recovery logic can be
/// exercised hermetically and deterministically, without process spawn
/// latency or platform differences.
#[derive(Debug)]
pub struct ChaosShard {
    inner: InProcShard,
    schema: Schema,
    shard_index: u32,
    fault: Option<WorkerFault>,
    /// When set, the fault re-arms after every respawn — the shard
    /// never becomes healthy, for retry-budget-exhaustion tests.
    sticky: bool,
    requests: u64,
    respawns: u64,
}

impl ChaosShard {
    /// An empty chaos shard over `schema`, optionally pre-armed.
    pub fn new(schema: Schema, fault: Option<WorkerFault>) -> Self {
        ChaosShard {
            inner: InProcShard::new(schema.clone()),
            schema,
            shard_index: 0,
            fault,
            sticky: false,
            requests: 0,
            respawns: 0,
        }
    }

    /// Makes the armed fault survive respawns: every incarnation fails
    /// again, so the supervisor's retry budget must run out.
    #[must_use]
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// Arms a fault on the current incarnation.
    pub fn arm(&mut self, fault: WorkerFault) {
        self.fault = Some(fault);
    }

    /// How many times this shard was respawned.
    pub fn respawn_count(&self) -> u64 {
        self.respawns
    }

    /// Counts a request and fires the armed fault at (or past) its
    /// site. `>=` rather than `==`: a plan's site may exceed the number
    /// of requests a shorter interaction makes, and "fires at the next
    /// opportunity" keeps every seed meaningful.
    fn trip(&mut self) -> Result<(), StreamError> {
        self.requests += 1;
        let Some(fault) = self.fault else {
            return Ok(());
        };
        if self.requests < fault.site {
            return Ok(());
        }
        if !self.sticky {
            self.fault = None;
        }
        let kind = match fault.kind {
            WorkerFaultKind::Kill => {
                TransportErrorKind::Read("worker closed its pipe (injected kill)".into())
            }
            WorkerFaultKind::Truncate => {
                TransportErrorKind::Read("mid-frame EOF (injected truncation)".into())
            }
            WorkerFaultKind::Garbage => {
                TransportErrorKind::Decode("bad frame magic (injected garbage)".into())
            }
            WorkerFaultKind::Stall { millis } => TransportErrorKind::Timeout { millis },
        };
        Err(StreamError::Transport(
            TransportError::of_kind(kind)
                .with_shard(self.shard_index)
                .with_stderr(vec![format!(
                    "afd-worker: injected fault at request {}",
                    self.requests
                )]),
        ))
    }
}

impl ShardBackend for ChaosShard {
    fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
        self.trip()?;
        self.inner.subscribe(fd)
    }

    fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
        self.trip()?;
        self.inner.apply(delta)
    }

    fn table(&self, cid: usize) -> &IncTable {
        self.inner.table(cid)
    }

    fn n_live(&self) -> usize {
        self.inner.n_live()
    }

    fn n_y_side_ids(&self, cid: usize) -> usize {
        self.inner.n_y_side_ids(cid)
    }

    fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        self.inner.y_side_values(cid, id)
    }

    fn snapshot(&mut self) -> Result<Relation, StreamError> {
        self.trip()?;
        self.inner.snapshot()
    }

    fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        self.trip()?;
        self.inner.compact()
    }

    fn configure(&mut self, shard_index: u32, _deadline: std::time::Duration) {
        self.shard_index = shard_index;
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn respawn(&mut self) -> Result<(), StreamError> {
        self.inner = InProcShard::new(self.schema.clone());
        self.respawns += 1;
        self.requests = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_env_round_trip() {
        let faults = [
            WorkerFault {
                site: 3,
                kind: WorkerFaultKind::Kill,
            },
            WorkerFault {
                site: 2,
                kind: WorkerFaultKind::Truncate,
            },
            WorkerFault {
                site: 1,
                kind: WorkerFaultKind::Garbage,
            },
            WorkerFault {
                site: 7,
                kind: WorkerFaultKind::Stall { millis: 400 },
            },
        ];
        for fault in faults {
            assert_eq!(WorkerFault::parse(&fault.to_env()), Some(fault));
        }
    }

    #[test]
    fn malformed_fault_specs_are_ignored() {
        for bad in [
            "",
            "kill",
            "kill:",
            "kill:0",
            "kill:x",
            "explode:3",
            "stall:2",
            "stall:2:x",
            "kill:1:2",
            "stall:1:5:9",
        ] {
            assert_eq!(WorkerFault::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn fault_plan_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = FaultPlan::single(seed, 4, 10, 50);
            let b = FaultPlan::single(seed, 4, 10, 50);
            assert_eq!(a, b);
            assert!(a.shard < 4);
            assert!((1..=10).contains(&a.fault.site));
        }
        // Different seeds exercise different kinds/sites.
        let plans: std::collections::BTreeSet<String> = (0..64)
            .map(|s| FaultPlan::single(s, 4, 10, 50).fault.to_env())
            .collect();
        assert!(plans.len() > 8, "seeds should spread over the plan space");
    }

    #[test]
    fn chaos_shard_trips_then_recovers() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let mut shard = ChaosShard::new(
            schema,
            Some(WorkerFault {
                site: 2,
                kind: WorkerFaultKind::Kill,
            }),
        );
        shard.configure(3, std::time::Duration::from_secs(1));
        let fd = Fd::linear(afd_relation::AttrId(0), afd_relation::AttrId(1));
        shard.subscribe(&fd).expect("site 1 passes");
        let err = shard
            .apply(&RowDelta::insert_only([vec![Value::Int(1), Value::Int(2)]]))
            .expect_err("site 2 trips");
        match err {
            StreamError::Transport(te) => {
                assert_eq!(te.shard, Some(3));
                assert!(matches!(te.kind, TransportErrorKind::Read(_)));
                assert!(!te.stderr.is_empty());
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(shard.supports_recovery());
        shard.respawn().expect("chaos respawn");
        assert_eq!(shard.respawn_count(), 1);
        // Fresh incarnation: empty and healthy (fault consumed).
        assert_eq!(shard.n_live(), 0);
        shard.subscribe(&fd).expect("healthy after respawn");
        shard
            .apply(&RowDelta::insert_only([vec![Value::Int(1), Value::Int(2)]]))
            .expect("healthy after respawn");
        assert_eq!(shard.n_live(), 1);
    }

    #[test]
    fn sticky_chaos_shard_refaults_after_respawn() {
        let schema = Schema::new(["X", "Y"]).unwrap();
        let fault = WorkerFault {
            site: 1,
            kind: WorkerFaultKind::Stall { millis: 9 },
        };
        let mut shard = ChaosShard::new(schema, Some(fault)).sticky();
        let fd = Fd::linear(afd_relation::AttrId(0), afd_relation::AttrId(1));
        assert!(shard.subscribe(&fd).is_err());
        shard.respawn().unwrap();
        let err = shard.subscribe(&fd).expect_err("sticky fault re-arms");
        assert!(matches!(
            err,
            StreamError::Transport(TransportError {
                kind: TransportErrorKind::Timeout { millis: 9 },
                ..
            })
        ));
    }
}
