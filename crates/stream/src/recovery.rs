//! Recovery policy and reporting for the self-healing shard fabric.
//!
//! A recovery-enabled [`ShardedSession`](crate::ShardedSession) keeps, per
//! shard, a framed [`SessionSnapshot`](crate::SessionSnapshot) checkpoint
//! plus the encoded [`RowDelta`](crate::RowDelta) log since that
//! checkpoint. When a shard's transport fails (worker killed, pipe
//! corrupted, request deadline elapsed), the supervisor respawns the
//! worker, restores the checkpoint, replays the log, and retries the
//! in-flight request — poisoning the session only once the
//! [`retry_budget`](RecoveryConfig::retry_budget) is exhausted. Both the
//! checkpoint and the log use the canonical `afd-wire` byte forms, so a
//! recovered shard is bit-identical to a never-failed one by
//! construction.
//!
//! [`RecoveryConfig`] is the policy knob set (checkpoint cadence, retry
//! budget, backoff, request deadline); [`RecoveryReport`] is the
//! observability surface (respawns and replayed deltas per shard);
//! [`ShutdownReport`] accounts for graceful worker shutdown.

use crate::delta::StreamError;

/// Policy for supervised shard recovery.
///
/// Validated at construction boundaries ([`validate`](Self::validate)):
/// a zero checkpoint interval, retry budget, or request deadline is
/// rejected loudly rather than silently clamped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Refresh each shard's checkpoint every this many applies (K). A
    /// smaller K bounds replay work at the cost of a full snapshot
    /// round-trip per K applies; the `record_recovery` bench measures
    /// the trade-off.
    pub checkpoint_every: u64,
    /// How many respawn-restore-replay-retry attempts a single failing
    /// request gets before the session is poisoned.
    pub retry_budget: u32,
    /// Base backoff between attempts, in milliseconds; attempt `i`
    /// sleeps `backoff_ms << i` (capped). Zero disables backoff.
    pub backoff_ms: u64,
    /// Deadline for every coordinator→worker request, in milliseconds.
    /// A worker that does not answer in time is treated as dead and
    /// fed to the same recovery path.
    pub request_timeout_ms: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 64,
            retry_budget: 3,
            backoff_ms: 10,
            request_timeout_ms: 30_000,
        }
    }
}

impl RecoveryConfig {
    /// Rejects configurations that would disable recovery semantics by
    /// accident: a zero checkpoint interval, retry budget, or request
    /// deadline.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.checkpoint_every == 0 {
            return Err(StreamError::ShardConfig(
                "recovery checkpoint interval must be at least 1 apply".into(),
            ));
        }
        if self.retry_budget == 0 {
            return Err(StreamError::ShardConfig(
                "recovery retry budget must be at least 1 attempt".into(),
            ));
        }
        if self.request_timeout_ms == 0 {
            return Err(StreamError::ShardConfig(
                "request timeout must be at least 1 ms".into(),
            ));
        }
        Ok(())
    }
}

/// Per-shard recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardRecoveryStats {
    /// Times this shard's worker was respawned.
    pub respawns: u64,
    /// Deltas replayed from the post-checkpoint log across all
    /// recoveries of this shard.
    pub deltas_replayed: u64,
}

/// What supervision did on behalf of a session: one entry per shard.
///
/// All-zero counters mean no fault was ever observed (or the session's
/// backends do not support recovery).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Counters, indexed by shard.
    pub shards: Vec<ShardRecoveryStats>,
}

impl RecoveryReport {
    /// Total worker respawns across all shards.
    pub fn total_respawns(&self) -> u64 {
        self.shards.iter().map(|s| s.respawns).sum()
    }

    /// Total replayed deltas across all shards.
    pub fn total_deltas_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.deltas_replayed).sum()
    }
}

/// Outcome of a graceful [`shutdown`](crate::ShardedSession::shutdown).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// How many shards were asked to exit.
    pub shards: usize,
    /// Shards that did not acknowledge the shutdown request within the
    /// deadline (their processes are still killed on drop).
    pub stragglers: Vec<u32>,
}

impl ShutdownReport {
    /// True when every worker acknowledged the shutdown request.
    pub fn clean(&self) -> bool {
        self.stragglers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        RecoveryConfig::default().validate().expect("default valid");
    }

    #[test]
    fn zero_knobs_are_rejected() {
        let zero_ckpt = RecoveryConfig {
            checkpoint_every: 0,
            ..RecoveryConfig::default()
        };
        assert!(matches!(
            zero_ckpt.validate(),
            Err(StreamError::ShardConfig(msg)) if msg.contains("checkpoint")
        ));
        let zero_budget = RecoveryConfig {
            retry_budget: 0,
            ..RecoveryConfig::default()
        };
        assert!(matches!(
            zero_budget.validate(),
            Err(StreamError::ShardConfig(msg)) if msg.contains("retry budget")
        ));
        let zero_deadline = RecoveryConfig {
            request_timeout_ms: 0,
            ..RecoveryConfig::default()
        };
        assert!(matches!(
            zero_deadline.validate(),
            Err(StreamError::ShardConfig(msg)) if msg.contains("timeout")
        ));
        // Zero backoff is a legitimate "retry immediately" policy.
        let zero_backoff = RecoveryConfig {
            backoff_ms: 0,
            ..RecoveryConfig::default()
        };
        zero_backoff.validate().expect("zero backoff is allowed");
    }

    #[test]
    fn report_totals_sum_over_shards() {
        let report = RecoveryReport {
            shards: vec![
                ShardRecoveryStats {
                    respawns: 1,
                    deltas_replayed: 4,
                },
                ShardRecoveryStats {
                    respawns: 2,
                    deltas_replayed: 9,
                },
            ],
        };
        assert_eq!(report.total_respawns(), 3);
        assert_eq!(report.total_deltas_replayed(), 13);
        assert_eq!(RecoveryReport::default().total_respawns(), 0);
    }

    #[test]
    fn shutdown_report_cleanliness() {
        assert!(ShutdownReport {
            shards: 2,
            stragglers: vec![]
        }
        .clean());
        assert!(!ShutdownReport {
            shards: 2,
            stragglers: vec![1]
        }
        .clean());
    }
}
