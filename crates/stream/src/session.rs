//! The streaming session: an incrementally maintained relation plus the
//! tracked FD candidates whose structures and scores it keeps fresh.
//!
//! [`IncrementalRelation`] is an append-only row log with tombstones:
//! inserts append (dictionary codes are stable for the life of the log),
//! deletes only flip a liveness bit. [`StreamSession`] layers candidate
//! tracking on top: per subscribed FD it delta-maintains the dense side
//! encodings (`row -> X-group id`, `row -> Y-group id` — the incremental
//! PLI membership), an [`IncTable`] of joint counts, and the measure
//! scores. [`StreamSession::apply`] is `O(|delta| · |tracked|)` plus the
//! (tiny) histogram score reads — it never rescans the relation.
//!
//! Periodic [`StreamSession::compact`]ion drops tombstones, rebuilds every
//! structure through the batch kernels (`group_encode`, CSR
//! [`ContingencyTable`], [`Pli`]) and *asserts equivalence* with the
//! incremental state — divergence surfaces as
//! [`StreamError::Diverged`] instead of silently serving wrong scores.

use std::collections::{HashMap, HashSet};

use afd_relation::{
    AttrId, ContingencyTable, Fd, GroupEncoding, Pli, Relation, Schema, Value, NULL_CODE,
};

use crate::delta::{RowDelta, RowId, StreamError};
use crate::table::{IncTable, StreamScores};

/// An append-only relation log with tombstone deletes.
///
/// Row ids are insertion positions; deleted rows keep their slot (and
/// their dictionary codes) until [`IncrementalRelation::snapshot`] /
/// session compaction renumbers the survivors.
#[derive(Debug, Clone)]
pub struct IncrementalRelation {
    rel: Relation,
    live: Vec<bool>,
    n_live: usize,
}

impl IncrementalRelation {
    /// An empty log over `schema`.
    pub fn new(schema: Schema) -> Self {
        IncrementalRelation {
            rel: Relation::empty(schema),
            live: Vec::new(),
            n_live: 0,
        }
    }

    /// Wraps an existing relation; all rows start live.
    pub fn from_relation(rel: Relation) -> Self {
        let n = rel.n_rows();
        IncrementalRelation {
            rel,
            live: vec![true; n],
            n_live: n,
        }
    }

    /// Appends one row, returning its id.
    ///
    /// # Errors
    /// [`StreamError::Arity`] if the row's arity differs from the schema's.
    pub fn insert_row(&mut self, row: Vec<Value>) -> Result<RowId, StreamError> {
        if row.len() != self.rel.arity() {
            return Err(StreamError::Arity {
                expected: self.rel.arity(),
                got: row.len(),
            });
        }
        let id = self.live.len() as RowId;
        self.rel.push_row(row)?;
        self.live.push(true);
        self.n_live += 1;
        Ok(id)
    }

    /// Tombstones row `id`.
    ///
    /// # Errors
    /// [`StreamError::UnknownRow`] / [`StreamError::AlreadyDeleted`].
    pub fn delete_row(&mut self, id: RowId) -> Result<(), StreamError> {
        match self.live.get_mut(id as usize) {
            None => Err(StreamError::UnknownRow(id)),
            Some(l) if !*l => Err(StreamError::AlreadyDeleted(id)),
            Some(l) => {
                *l = false;
                self.n_live -= 1;
                Ok(())
            }
        }
    }

    /// `true` iff `id` was inserted and not deleted.
    pub fn is_live(&self, id: RowId) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// Live (non-tombstoned) row count.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// Total slots in the log, tombstones included.
    pub fn n_slots(&self) -> usize {
        self.live.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    /// The underlying append-only log (tombstoned rows still present).
    pub fn log(&self) -> &Relation {
        &self.rel
    }

    /// Materialises the live rows as a fresh, compact [`Relation`]
    /// (code-level row filter — no `Value` round-trips).
    pub fn snapshot(&self) -> Relation {
        self.rel.filter_rows(|r| self.live[r])
    }
}

/// One side's dense id dictionary: code tuple -> stable id, plus the
/// reverse `keys` list (id -> code tuple) that sharded coordinators use to
/// identify the same side value across shards.
#[derive(Debug, Clone, Default)]
struct SideIndex {
    index: HashMap<Vec<u32>, u32>,
    keys: Vec<Vec<u32>>,
}

impl SideIndex {
    fn encode(&mut self, rel: &Relation, attrs: &[AttrId], slot: usize, buf: &mut Vec<u32>) -> u32 {
        buf.clear();
        for &a in attrs {
            let c = rel.column(a).codes()[slot];
            if c == NULL_CODE {
                return NULL_CODE;
            }
            buf.push(c);
        }
        if let Some(&id) = self.index.get(buf.as_slice()) {
            return id;
        }
        let id = self.index.len() as u32;
        self.index.insert(buf.clone(), id);
        self.keys.push(buf.clone());
        id
    }
}

/// One tracked candidate's delta-maintained state.
#[derive(Debug, Clone)]
struct TrackedCandidate {
    fd: Fd,
    /// Dense side-id dictionaries: lhs/rhs code tuple -> stable id.
    x_index: SideIndex,
    y_index: SideIndex,
    /// Per-slot side ids ([`NULL_CODE`] marks a NULL in the side's attrs);
    /// `row_x` *is* the incremental PLI membership of the LHS partition.
    row_x: Vec<u32>,
    row_y: Vec<u32>,
    table: IncTable,
    last: StreamScores,
}

impl TrackedCandidate {
    /// Encodes slot `slot` of the log and counts it into the table when
    /// live and NULL-free. Called once per slot, in slot order.
    fn ingest_slot(&mut self, rel: &Relation, slot: usize, live: bool, buf: &mut Vec<u32>) {
        debug_assert_eq!(self.row_x.len(), slot, "slots ingested in order");
        if !live {
            // Tombstoned before this candidate existed: never encoded, so
            // dead rows cannot influence side-id assignment.
            self.row_x.push(NULL_CODE);
            self.row_y.push(NULL_CODE);
            return;
        }
        let xi = self.x_index.encode(rel, self.fd.lhs().ids(), slot, buf);
        let yj = self.y_index.encode(rel, self.fd.rhs().ids(), slot, buf);
        self.row_x.push(xi);
        self.row_y.push(yj);
        if xi != NULL_CODE && yj != NULL_CODE {
            self.table.insert(xi, yj);
        }
    }

    fn forget_slot(&mut self, slot: usize) {
        let (xi, yj) = (self.row_x[slot], self.row_y[slot]);
        if xi != NULL_CODE && yj != NULL_CODE {
            self.table.delete(xi, yj);
        }
    }
}

/// Per-candidate score movement reported by [`StreamSession::apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreDiff {
    /// Index of the candidate (subscription order).
    pub candidate: usize,
    /// Scores before the delta.
    pub before: StreamScores,
    /// Scores after the delta.
    pub after: StreamScores,
}

impl ScoreDiff {
    /// Largest absolute per-measure movement.
    pub fn max_abs_delta(&self) -> f64 {
        self.before.max_abs_diff(&self.after)
    }

    /// `true` iff any measure moved by more than `eps`.
    pub fn changed(&self, eps: f64) -> bool {
        self.max_abs_delta() > eps
    }
}

/// Outcome of a successful compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Tombstoned slots reclaimed.
    pub rows_dropped: usize,
    /// Candidates whose PLI/contingency/scores were verified against the
    /// batch kernels.
    pub candidates_checked: usize,
    /// Live rows after compaction.
    pub n_live: usize,
}

/// A streaming AFD scoring session over an [`IncrementalRelation`].
#[derive(Debug, Clone)]
pub struct StreamSession {
    inc: IncrementalRelation,
    tracked: Vec<TrackedCandidate>,
    deltas_applied: u64,
    compact_every: Option<u64>,
}

impl StreamSession {
    /// An empty session over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::over(IncrementalRelation::new(schema))
    }

    /// A session whose log starts as `rel` (all rows live).
    pub fn from_relation(rel: Relation) -> Self {
        Self::over(IncrementalRelation::from_relation(rel))
    }

    fn over(inc: IncrementalRelation) -> Self {
        StreamSession {
            inc,
            tracked: Vec::new(),
            deltas_applied: 0,
            compact_every: None,
        }
    }

    /// Enables automatic compaction (with batch-kernel equivalence
    /// verification) after every `every` applied deltas.
    pub fn with_compaction_every(mut self, every: u64) -> Self {
        self.compact_every = Some(every.max(1));
        self
    }

    /// The underlying incremental relation.
    pub fn relation(&self) -> &IncrementalRelation {
        &self.inc
    }

    /// Subscribes a candidate FD, building its incremental state from the
    /// current log, and returns its candidate index. Re-subscribing an
    /// already-tracked FD returns the existing index.
    ///
    /// # Errors
    /// [`StreamError::UnknownAttr`] if the FD references an attribute
    /// outside the schema.
    pub fn subscribe(&mut self, fd: Fd) -> Result<usize, StreamError> {
        if let Some(i) = self.tracked.iter().position(|t| t.fd == fd) {
            return Ok(i);
        }
        for &a in fd.lhs().ids().iter().chain(fd.rhs().ids()) {
            if a.index() >= self.inc.rel.arity() {
                return Err(StreamError::UnknownAttr(a.0));
            }
        }
        let mut t = TrackedCandidate {
            fd,
            x_index: SideIndex::default(),
            y_index: SideIndex::default(),
            row_x: Vec::with_capacity(self.inc.n_slots()),
            row_y: Vec::with_capacity(self.inc.n_slots()),
            table: IncTable::new(),
            last: StreamScores::exact(),
        };
        let mut buf = Vec::new();
        for slot in 0..self.inc.n_slots() {
            t.ingest_slot(&self.inc.rel, slot, self.inc.live[slot], &mut buf);
        }
        t.last = t.table.scores();
        self.tracked.push(t);
        Ok(self.tracked.len() - 1)
    }

    /// Number of tracked candidates.
    pub fn n_candidates(&self) -> usize {
        self.tracked.len()
    }

    /// The FD of candidate `cid`.
    pub fn fd(&self, cid: usize) -> &Fd {
        &self.tracked[cid].fd
    }

    /// The current scores of candidate `cid`.
    pub fn scores(&self, cid: usize) -> StreamScores {
        self.tracked[cid].last
    }

    /// The delta-maintained joint-count table of candidate `cid` — the
    /// input to cross-shard [`IncTable::merge`]s.
    pub fn table(&self, cid: usize) -> &IncTable {
        &self.tracked[cid].table
    }

    /// Number of Y side ids ever assigned for candidate `cid` (dense,
    /// `0..n`; ids are stable until the next compaction).
    pub fn n_y_side_ids(&self, cid: usize) -> usize {
        self.tracked[cid].y_index.keys.len()
    }

    /// The *value-level* Y key of side id `id` for candidate `cid`
    /// (RHS-attribute values, decoded through this session's
    /// dictionaries) — how a sharded coordinator recognises the same Y
    /// value across shards whose dictionary codes differ.
    ///
    /// # Panics
    /// Panics if `cid`/`id` are out of range (engine bug).
    pub fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
        let t = &self.tracked[cid];
        t.y_index.keys[id as usize]
            .iter()
            .zip(t.fd.rhs().ids())
            .map(|(&code, &a)| {
                self.inc
                    .rel
                    .column(a)
                    .dict()
                    .value(code)
                    .expect("side keys hold live dictionary codes")
                    .clone()
            })
            .collect()
    }

    /// Applies one delta: tombstones `delta.deletes`, appends
    /// `delta.inserts`, patches every tracked candidate's structures, and
    /// returns one [`ScoreDiff`] per candidate (subscription order).
    ///
    /// The delta is validated up front; on a validation `Err` the session
    /// is unchanged. If periodic compaction is enabled and due, it runs
    /// after the delta and its verification failures surface here as
    /// [`StreamError::Diverged`] — in that one case the delta *has* been
    /// applied (scores are current and queryable via
    /// [`StreamSession::scores`]) but the log remains uncompacted, with
    /// the divergent state intact for post-mortem.
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`] on invalid deltas.
    pub fn apply(&mut self, delta: &RowDelta) -> Result<Vec<ScoreDiff>, StreamError> {
        // Validate everything before touching state.
        let mut seen: HashSet<RowId> = HashSet::with_capacity(delta.deletes.len());
        for &id in &delta.deletes {
            if (id as usize) >= self.inc.n_slots() {
                return Err(StreamError::UnknownRow(id));
            }
            if !self.inc.live[id as usize] || !seen.insert(id) {
                return Err(StreamError::AlreadyDeleted(id));
            }
        }
        for row in &delta.inserts {
            if row.len() != self.inc.rel.arity() {
                return Err(StreamError::Arity {
                    expected: self.inc.rel.arity(),
                    got: row.len(),
                });
            }
        }
        // Deletes first: ids refer to pre-delta rows by contract.
        for &id in &delta.deletes {
            self.inc.delete_row(id).expect("liveness validated above");
            for t in &mut self.tracked {
                t.forget_slot(id as usize);
            }
        }
        let mut buf = Vec::new();
        for row in &delta.inserts {
            let slot = self
                .inc
                .insert_row(row.clone())
                .expect("arity validated above") as usize;
            for t in &mut self.tracked {
                t.ingest_slot(&self.inc.rel, slot, true, &mut buf);
            }
        }
        let diffs = self
            .tracked
            .iter_mut()
            .enumerate()
            .map(|(i, t)| {
                let after = t.table.scores();
                let diff = ScoreDiff {
                    candidate: i,
                    before: t.last,
                    after,
                };
                t.last = after;
                diff
            })
            .collect();
        self.deltas_applied += 1;
        if let Some(every) = self.compact_every {
            if self.deltas_applied.is_multiple_of(every) {
                self.compact()?;
            }
        }
        Ok(diffs)
    }

    /// Materialises candidate `cid`'s LHS partition as a [`Pli`] in
    /// *snapshot* row numbering — byte-identical to
    /// `Pli::from_relation(&session.relation().snapshot(), fd.lhs())`.
    ///
    /// O(live rows); the maintenance itself stays O(delta) — this is the
    /// on-demand view for compaction checks and lattice hand-off.
    pub fn pli(&self, cid: usize) -> Pli {
        let enc = self.live_encoding(&self.tracked[cid].row_x);
        Pli::from_encoding(&enc, self.inc.n_live)
    }

    /// Materialises candidate `cid`'s contingency table in snapshot
    /// numbering — byte-identical to `fd.contingency(&snapshot)`.
    pub fn contingency(&self, cid: usize) -> ContingencyTable {
        let t = &self.tracked[cid];
        let mut xs = Vec::with_capacity(self.inc.n_live);
        let mut ys = Vec::with_capacity(self.inc.n_live);
        for slot in 0..self.inc.n_slots() {
            if self.inc.live[slot] {
                xs.push(t.row_x[slot]);
                ys.push(t.row_y[slot]);
            }
        }
        ContingencyTable::from_codes(&xs, &ys)
    }

    /// Dense first-encounter remap of `row_side` restricted to live rows.
    fn live_encoding(&self, row_side: &[u32]) -> GroupEncoding {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(self.inc.n_live);
        for (&raw, &live) in row_side.iter().zip(&self.inc.live) {
            if !live {
                continue;
            }
            if raw == NULL_CODE {
                codes.push(NULL_CODE);
                continue;
            }
            let next = remap.len() as u32;
            codes.push(*remap.entry(raw).or_insert(next));
        }
        GroupEncoding {
            n_groups: remap.len() as u32,
            codes,
        }
    }

    /// Compacts the log: verifies every candidate's incremental PLI,
    /// contingency table and scores against a from-scratch rebuild via the
    /// batch kernels, then swaps in the tombstone-free snapshot (row ids
    /// renumber densely; side-id dictionaries reset).
    ///
    /// # Errors
    /// [`StreamError::Diverged`] when the incremental state disagrees
    /// with the batch rebuild — state is left unswapped for post-mortem.
    pub fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        let snapshot = self.inc.snapshot();
        for (i, t) in self.tracked.iter().enumerate() {
            let batch_ct = t.fd.contingency(&snapshot);
            if !tables_equal(&self.contingency(i), &batch_ct) {
                return Err(StreamError::Diverged(format!(
                    "contingency table of candidate {i}"
                )));
            }
            let batch_pli = Pli::from_relation(&snapshot, t.fd.lhs());
            if !plis_equal(&self.pli(i), &batch_pli) {
                return Err(StreamError::Diverged(format!("PLI of candidate {i}")));
            }
        }
        // Rebuild into a scratch session and verify *before* swapping, so
        // a Diverged error really does leave this session untouched.
        let mut rebuilt = Self::over(IncrementalRelation::from_relation(snapshot));
        for (i, t) in self.tracked.iter().enumerate() {
            let cid = rebuilt
                .subscribe(t.fd.clone())
                .expect("attrs validated at original subscribe");
            if !rebuilt.tracked[cid].last.bits_eq(&t.last) {
                return Err(StreamError::Diverged(format!(
                    "scores of candidate {i} after rebuild"
                )));
            }
        }
        let rows_dropped = self.inc.n_slots() - self.inc.n_live();
        self.inc = rebuilt.inc;
        self.tracked = rebuilt.tracked;
        Ok(CompactionReport {
            rows_dropped,
            candidates_checked: self.tracked.len(),
            n_live: self.inc.n_live(),
        })
    }
}

/// Structural equality of two contingency tables (same group order, same
/// margins, same cells).
pub fn tables_equal(a: &ContingencyTable, b: &ContingencyTable) -> bool {
    a.n() == b.n()
        && a.row_totals() == b.row_totals()
        && a.col_totals() == b.col_totals()
        && (0..a.n_x()).all(|i| a.row(i) == b.row(i))
}

/// Structural equality of two PLIs (same cluster order, same rows).
pub fn plis_equal(a: &Pli, b: &Pli) -> bool {
    a.n_rows() == b.n_rows()
        && a.n_clusters() == b.n_clusters()
        && a.clusters().zip(b.clusters()).all(|(x, y)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::AttrSet;

    fn schema2() -> Schema {
        Schema::new(["X", "Y"]).unwrap()
    }

    fn row(x: i64, y: i64) -> Vec<Value> {
        vec![Value::Int(x), Value::Int(y)]
    }

    fn session_with(rows: &[(i64, i64)]) -> (StreamSession, usize) {
        let mut s = StreamSession::new(schema2());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let delta = RowDelta::insert_only(rows.iter().map(|&(x, y)| row(x, y)));
        s.apply(&delta).unwrap();
        (s, cid)
    }

    #[test]
    fn insert_then_score_matches_batch_table() {
        let (s, cid) = session_with(&[(1, 10), (1, 10), (1, 11), (2, 20)]);
        let snap = s.relation().snapshot();
        let batch = s.fd(cid).contingency(&snap);
        assert!(tables_equal(&s.contingency(cid), &batch));
        assert!((s.scores(cid).g3 - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn deletes_update_scores_and_pli() {
        let (mut s, cid) = session_with(&[(1, 10), (1, 10), (1, 11), (2, 20)]);
        // Remove the violating row: FD becomes exact.
        s.apply(&RowDelta::delete_only([2])).unwrap();
        assert_eq!(s.scores(cid).g3, 1.0);
        let snap = s.relation().snapshot();
        assert_eq!(snap.n_rows(), 3);
        assert!(plis_equal(
            &s.pli(cid),
            &Pli::from_relation(&snap, &AttrSet::single(AttrId(0)))
        ));
    }

    #[test]
    fn score_diff_reports_movement() {
        let (mut s, _) = session_with(&[(1, 10), (1, 10)]);
        let diffs = s.apply(&RowDelta::insert_only([row(1, 99)])).unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].before.g3, 1.0);
        assert!(diffs[0].after.g3 < 1.0);
        assert!(diffs[0].changed(1e-9));
        assert!(diffs[0].max_abs_delta() > 0.0);
    }

    #[test]
    fn invalid_deltas_leave_session_untouched() {
        let (mut s, cid) = session_with(&[(1, 10), (2, 20)]);
        let before = s.scores(cid);
        // Unknown row.
        assert_eq!(
            s.apply(&RowDelta::delete_only([99])),
            Err(StreamError::UnknownRow(99))
        );
        // Duplicate delete in one delta.
        assert_eq!(
            s.apply(&RowDelta::delete_only([0, 0])),
            Err(StreamError::AlreadyDeleted(0))
        );
        // Arity mismatch in a mixed delta: nothing (not even the valid
        // delete) may be applied.
        let bad = RowDelta {
            inserts: vec![vec![Value::Int(1)]],
            deletes: vec![0],
        };
        assert!(matches!(s.apply(&bad), Err(StreamError::Arity { .. })));
        assert!(s.relation().is_live(0));
        assert_eq!(s.relation().n_live(), 2);
        assert!(s.scores(cid).bits_eq(&before));
    }

    #[test]
    fn delete_then_reinsert_roundtrips_scores() {
        let (mut s, cid) = session_with(&[(1, 10), (1, 11), (2, 20), (2, 20)]);
        let before = s.scores(cid);
        s.apply(&RowDelta::delete_only([1])).unwrap();
        s.apply(&RowDelta::insert_only([row(1, 11)])).unwrap();
        assert!(s.scores(cid).bits_eq(&before));
    }

    #[test]
    fn null_rows_are_dropped_per_candidate() {
        let mut s = StreamSession::new(schema2());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only([
            row(1, 10),
            vec![Value::Null, Value::Int(10)],
            vec![Value::Int(1), Value::Null],
        ]))
        .unwrap();
        let ct = s.contingency(cid);
        assert_eq!(ct.n(), 1);
        // NULL-Y row still joins the LHS partition (PLI ignores the RHS).
        let snap = s.relation().snapshot();
        assert!(plis_equal(
            &s.pli(cid),
            &Pli::from_relation(&snap, &AttrSet::single(AttrId(0)))
        ));
        assert_eq!(s.pli(cid).n_clusters(), 1); // rows 0 and 2 share X=1
    }

    #[test]
    fn subscribe_after_deletes_skips_tombstones() {
        let mut s = StreamSession::new(schema2());
        s.apply(&RowDelta::insert_only([row(1, 10), row(1, 99), row(2, 20)]))
            .unwrap();
        s.apply(&RowDelta::delete_only([1])).unwrap();
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        assert_eq!(s.scores(cid).g3, 1.0); // violating row already dead
                                           // Resubscribing returns the same candidate.
        assert_eq!(s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap(), cid);
    }

    #[test]
    fn subscribe_rejects_out_of_schema_attrs() {
        let mut s = StreamSession::new(schema2());
        assert_eq!(
            s.subscribe(Fd::linear(AttrId(0), AttrId(7))),
            Err(StreamError::UnknownAttr(7))
        );
    }

    #[test]
    fn compaction_drops_tombstones_and_verifies() {
        let (mut s, cid) = session_with(&[(1, 10), (1, 10), (1, 11), (2, 20), (3, 30)]);
        s.apply(&RowDelta::delete_only([0, 4])).unwrap();
        let before = s.scores(cid);
        let report = s.compact().unwrap();
        assert_eq!(report.rows_dropped, 2);
        assert_eq!(report.candidates_checked, 1);
        assert_eq!(report.n_live, 3);
        assert_eq!(s.relation().n_slots(), 3);
        assert!(s.scores(cid).bits_eq(&before));
        // The session keeps working after renumbering.
        s.apply(&RowDelta::insert_only([row(2, 21)])).unwrap();
        assert!(s.scores(cid).g3 < 1.0);
    }

    #[test]
    fn auto_compaction_runs_on_schedule() {
        let mut s = StreamSession::new(schema2()).with_compaction_every(2);
        s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only([row(1, 10), row(2, 20)]))
            .unwrap();
        s.apply(&RowDelta::delete_only([0])).unwrap(); // 2nd delta -> compacts
        assert_eq!(s.relation().n_slots(), 1);
        assert_eq!(s.relation().n_live(), 1);
    }

    #[test]
    fn multi_attribute_sides_track_correctly() {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let mut s = StreamSession::from_relation(Relation::empty(schema));
        let fd = Fd::new(
            AttrSet::new([AttrId(0), AttrId(1)]),
            AttrSet::single(AttrId(2)),
        )
        .unwrap();
        let cid = s.subscribe(fd).unwrap();
        let rows = [[1i64, 1, 7], [1, 1, 7], [1, 2, 8], [1, 1, 9], [2, 1, 7]];
        s.apply(&RowDelta::insert_only(
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>()),
        ))
        .unwrap();
        let snap = s.relation().snapshot();
        let batch = s.fd(cid).contingency(&snap);
        assert!(tables_equal(&s.contingency(cid), &batch));
        assert!(plis_equal(
            &s.pli(cid),
            &Pli::from_relation(&snap, s.fd(cid).lhs())
        ));
    }
}
