//! Sharded streaming: hash-partitioned [`StreamSession`] shards behind a
//! single-session facade.
//!
//! The ROADMAP scale-out item: the histogram score reads of [`IncTable`]
//! are order-independent, so per-shard tables can be merged by summing
//! counts and histograms. The partitioning invariant that makes the merge
//! *correct* is that every X-group of every tracked candidate lives
//! wholly inside one shard — guaranteed by routing each row on the hash
//! of its **shard key** values, where the shard key is a subset of every
//! subscribed FD's LHS (equal X values ⇒ equal key values ⇒ same shard).
//! The Y margins are the one aggregate that spans shards; the coordinator
//! owns a per-candidate global Y-id space and the merge re-derives the
//! column totals through it.
//!
//! * [`DeltaRouter`] — splits a global [`RowDelta`] into per-shard deltas,
//!   owning the global-row-id ⇄ (shard, local-row-id) placement map.
//! * [`ShardedSession`] — the [`StreamSession`] API over N shards:
//!   `apply` fans the routed deltas across shards on `afd-parallel`
//!   scoped threads, and score reads merge the per-shard [`IncTable`]s
//!   **bit-exactly** — a `ShardedSession` and a single `StreamSession`
//!   over the same deltas return bit-identical `f64`s (pinned by
//!   proptests for N ∈ {1, 2, 3, 7}).
//!
//! Compaction verification runs per shard against that shard's slice of
//! the snapshot, exactly as the ROADMAP prescribed.

use std::collections::HashMap;

use afd_parallel::par_map_mut;
use afd_relation::{AttrSet, Fd, Relation, Schema, Value};

use crate::delta::{RowDelta, RowId, StreamError};
use crate::session::{CompactionReport, ScoreDiff, StreamSession};
use crate::table::{IncTable, StreamScores};

/// Stable 64-bit FNV-1a over a row's shard-key values. Deterministic
/// across processes (unlike `DefaultHasher` guarantees), so a persisted
/// shard layout can be re-derived.
fn key_hash(values: impl Iterator<Item = Value>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for v in values {
        match v {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                i.to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Float(f) => {
                eat(2);
                f.get()
                    .to_bits()
                    .to_le_bytes()
                    .into_iter()
                    .for_each(&mut eat);
            }
            Value::Str(s) => {
                eat(3);
                s.bytes().for_each(&mut eat);
                eat(0xff);
            }
        }
    }
    h
}

/// Hash-partitions row deltas across `n_shards` by shard-key value and
/// owns the global ⇄ per-shard row-id translation.
///
/// Global row ids follow [`StreamSession`] semantics exactly: assigned
/// densely in arrival order, tombstoned by delete, renumbered by
/// [`DeltaRouter::compact`].
#[derive(Debug, Clone)]
pub struct DeltaRouter {
    key: AttrSet,
    arity: usize,
    n_shards: usize,
    /// Global slot -> (shard, shard-local slot).
    placement: Vec<(u32, RowId)>,
    /// Global slot liveness (mirrors the shards' tombstones).
    live: Vec<bool>,
    n_live: usize,
    /// Next local slot per shard.
    shard_slots: Vec<RowId>,
}

impl DeltaRouter {
    /// A router over `n_shards` shards keyed by `key` (attribute ids must
    /// lie inside a schema of `arity` attributes).
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero shards or an out-of-schema
    /// key attribute.
    pub fn new(key: AttrSet, arity: usize, n_shards: usize) -> Result<Self, StreamError> {
        if n_shards == 0 {
            return Err(StreamError::ShardConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if let Some(&a) = key.ids().iter().find(|a| a.index() >= arity) {
            return Err(StreamError::ShardConfig(format!(
                "shard key attribute {a} outside the {arity}-attribute schema"
            )));
        }
        Ok(DeltaRouter {
            key,
            arity,
            n_shards,
            placement: Vec::new(),
            live: Vec::new(),
            n_live: 0,
            shard_slots: vec![0; n_shards],
        })
    }

    /// The routing key.
    pub fn shard_key(&self) -> &AttrSet {
        &self.key
    }

    /// Number of shards routed across.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Global slots assigned so far (tombstones included).
    pub fn n_slots(&self) -> usize {
        self.placement.len()
    }

    /// Live global rows.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// The (shard, local slot) placement of live global row `id`.
    pub fn placement_of(&self, id: RowId) -> Option<(u32, RowId)> {
        (self.live.get(id as usize) == Some(&true)).then(|| self.placement[id as usize])
    }

    /// The shard a row with these values routes to.
    pub fn shard_of_row(&self, row: &[Value]) -> usize {
        if self.n_shards == 1 {
            return 0;
        }
        let h = key_hash(self.key.ids().iter().map(|a| row[a.index()].clone()));
        (h % self.n_shards as u64) as usize
    }

    /// Splits one global delta into per-shard deltas, assigning global
    /// ids to the inserts and translating delete ids to shard-local ones.
    /// Validation happens up front — on `Err` the router is unchanged
    /// (the same atomicity contract as [`StreamSession::apply`]).
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`], exactly as the unsharded session
    /// would report them.
    pub fn route(&mut self, delta: &RowDelta) -> Result<Vec<RowDelta>, StreamError> {
        let mut seen: std::collections::HashSet<RowId> =
            std::collections::HashSet::with_capacity(delta.deletes.len());
        for &id in &delta.deletes {
            if (id as usize) >= self.placement.len() {
                return Err(StreamError::UnknownRow(id));
            }
            if !self.live[id as usize] || !seen.insert(id) {
                return Err(StreamError::AlreadyDeleted(id));
            }
        }
        for row in &delta.inserts {
            if row.len() != self.arity {
                return Err(StreamError::Arity {
                    expected: self.arity,
                    got: row.len(),
                });
            }
        }
        let mut locals = vec![RowDelta::new(); self.n_shards];
        for &id in &delta.deletes {
            let (shard, local) = self.placement[id as usize];
            self.live[id as usize] = false;
            self.n_live -= 1;
            locals[shard as usize].deletes.push(local);
        }
        for row in &delta.inserts {
            let shard = self.shard_of_row(row);
            let local = self.shard_slots[shard];
            self.shard_slots[shard] += 1;
            self.placement.push((shard as u32, local));
            self.live.push(true);
            self.n_live += 1;
            locals[shard].inserts.push(row.clone());
        }
        Ok(locals)
    }

    /// Renumbers after the shards compacted: tombstoned slots vanish and
    /// both global and shard-local ids become dense again (in arrival
    /// order, matching [`StreamSession::compact`]'s renumbering).
    pub fn compact(&mut self) {
        let mut next_local = vec![0 as RowId; self.n_shards];
        let mut placement = Vec::with_capacity(self.n_live);
        for (slot, &(shard, _)) in self.placement.iter().enumerate() {
            if self.live[slot] {
                placement.push((shard, next_local[shard as usize]));
                next_local[shard as usize] += 1;
            }
        }
        self.placement = placement;
        self.live = vec![true; self.n_live];
        self.shard_slots = next_local;
    }
}

/// Per-candidate coordinator state: the global Y-id space shared by all
/// shards (column totals are the one aggregate that spans shards).
#[derive(Debug, Clone)]
struct ShardedCandidate {
    fd: Fd,
    /// Y value tuple -> global Y id.
    y_global: HashMap<Vec<Value>, u32>,
    /// Per shard: local Y side id -> global Y id.
    y_remap: Vec<Vec<u32>>,
    last: StreamScores,
}

/// N hash-partitioned [`StreamSession`] shards behind the single-session
/// API: same `subscribe`/`apply`/`scores` surface, same row-id semantics,
/// bit-identical score reads.
///
/// `apply` routes the delta ([`DeltaRouter`]), fans the per-shard deltas
/// across `afd-parallel` scoped threads, then refreshes each candidate's
/// merged scores via [`IncTable::merge`]. Because each shard's apply only
/// touches its own O(delta-slice) state, the *work per shard* shrinks
/// roughly 1/N — the quantity `record_shard` benchmarks.
#[derive(Debug, Clone)]
pub struct ShardedSession {
    shards: Vec<StreamSession>,
    router: DeltaRouter,
    candidates: Vec<ShardedCandidate>,
    threads: usize,
    deltas_applied: u64,
    compact_every: Option<u64>,
    /// Set when a compaction failed after at least one shard had already
    /// compacted: shard-local row ids renumbered but the router did not,
    /// so further `apply`s would tombstone the wrong rows. Score reads
    /// stay valid; mutation is refused.
    poisoned: bool,
}

impl ShardedSession {
    /// An empty sharded session over `schema`, routing on `shard_key`.
    ///
    /// With `n_shards == 1` the key is irrelevant (everything lands in
    /// shard 0) and any FD may subscribe; with more shards every
    /// subscribed FD's LHS must contain the key.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero shards or an out-of-schema
    /// key attribute.
    pub fn new(schema: Schema, shard_key: AttrSet, n_shards: usize) -> Result<Self, StreamError> {
        let router = DeltaRouter::new(shard_key, schema.arity(), n_shards)?;
        Ok(ShardedSession {
            shards: (0..n_shards)
                .map(|_| StreamSession::new(schema.clone()))
                .collect(),
            router,
            candidates: Vec::new(),
            threads: 1,
            deltas_applied: 0,
            compact_every: None,
            poisoned: false,
        })
    }

    /// A sharded session whose rows start as `rel` (all live), routed to
    /// their shards in row order.
    ///
    /// # Errors
    /// As [`ShardedSession::new`].
    pub fn from_relation(
        rel: Relation,
        shard_key: AttrSet,
        n_shards: usize,
    ) -> Result<Self, StreamError> {
        let mut s = Self::new(rel.schema().clone(), shard_key, n_shards)?;
        let seed = RowDelta::insert_only((0..rel.n_rows()).map(|r| rel.row(r)));
        s.apply(&seed).expect("seed rows match their own schema");
        s.deltas_applied = 0;
        Ok(s)
    }

    /// Fans per-shard applies over up to `threads` scoped workers
    /// (default 1: inline, deterministic either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables automatic (per-shard verified) compaction after every
    /// `every` applied deltas.
    pub fn with_compaction_every(mut self, every: u64) -> Self {
        self.compact_every = Some(every.max(1));
        self
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing layer (shard key, placements, live counts).
    pub fn router(&self) -> &DeltaRouter {
        &self.router
    }

    /// Live rows across all shards.
    pub fn n_live(&self) -> usize {
        self.router.n_live()
    }

    /// Live rows per shard — how even the hash partitioning came out.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.relation().n_live()).collect()
    }

    /// Number of tracked candidates.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The FD of candidate `cid`.
    pub fn fd(&self, cid: usize) -> &Fd {
        &self.candidates[cid].fd
    }

    /// Subscribes a candidate FD on every shard and returns its candidate
    /// index (re-subscribing returns the existing index).
    ///
    /// # Errors
    /// [`StreamError::UnknownAttr`] for out-of-schema attributes;
    /// [`StreamError::ShardConfig`] when `n_shards > 1` and the FD's LHS
    /// does not contain the shard key (its X-groups would straddle
    /// shards).
    pub fn subscribe(&mut self, fd: Fd) -> Result<usize, StreamError> {
        if let Some(i) = self.candidates.iter().position(|c| c.fd == fd) {
            return Ok(i);
        }
        if self.shards.len() > 1 && !self.router.shard_key().is_subset(fd.lhs()) {
            return Err(StreamError::ShardConfig(format!(
                "candidate LHS {:?} does not contain the shard key {:?}",
                fd.lhs().ids(),
                self.router.shard_key().ids()
            )));
        }
        for shard in &mut self.shards {
            let cid = shard.subscribe(fd.clone())?;
            debug_assert_eq!(cid, self.candidates.len(), "shards subscribe in lockstep");
        }
        self.candidates.push(ShardedCandidate {
            fd,
            y_global: HashMap::new(),
            y_remap: vec![Vec::new(); self.shards.len()],
            last: StreamScores::exact(),
        });
        let cid = self.candidates.len() - 1;
        self.sync_candidate(cid);
        self.candidates[cid].last = self.merged_scores(cid);
        Ok(cid)
    }

    /// The merged score read: a single shard reads its own histograms
    /// directly (O(distinct counts), same as an unsharded session —
    /// merging one part is a score-level identity); N > 1 sums the
    /// per-shard score aggregates via [`IncTable::merged_scores`]
    /// (O(histograms + column totals) — the merged group/cell maps are
    /// never materialised on this path).
    fn merged_scores(&self, cid: usize) -> StreamScores {
        if self.shards.len() == 1 {
            self.shards[0].scores(cid)
        } else {
            let cand = &self.candidates[cid];
            IncTable::merged_scores(
                self.shards
                    .iter()
                    .enumerate()
                    .map(|(s, shard)| (shard.table(cid), cand.y_remap[s].as_slice())),
            )
        }
    }

    /// Extends candidate `cid`'s per-shard Y remaps with any side ids the
    /// shards assigned since the last sync. Global ids are handed out in
    /// (shard, local-id) scan order — deterministic, and irrelevant to
    /// scores (histogram reductions never see Y identity).
    fn sync_candidate(&mut self, cid: usize) {
        let cand = &mut self.candidates[cid];
        for (s, shard) in self.shards.iter().enumerate() {
            let known = cand.y_remap[s].len();
            for id in known..shard.n_y_side_ids(cid) {
                let key = shard.y_side_values(cid, id as u32);
                let next = cand.y_global.len() as u32;
                let g = *cand.y_global.entry(key).or_insert(next);
                cand.y_remap[s].push(g);
            }
        }
    }

    /// Merges candidate `cid`'s per-shard tables into one [`IncTable`]
    /// over the whole relation (O(aggregate state), not O(rows)).
    pub fn merged_table(&self, cid: usize) -> IncTable {
        let cand = &self.candidates[cid];
        IncTable::merge(
            self.shards
                .iter()
                .enumerate()
                .map(|(s, shard)| (shard.table(cid), cand.y_remap[s].as_slice())),
        )
    }

    /// The current merged scores of candidate `cid` — bit-identical to a
    /// single [`StreamSession`] over the same delta history.
    pub fn scores(&self, cid: usize) -> StreamScores {
        self.candidates[cid].last
    }

    /// Applies one global delta: routes it, fans the per-shard slices
    /// across the shards in parallel, and reports one merged
    /// [`ScoreDiff`] per candidate.
    ///
    /// Validation happens in the router before anything mutates, so an
    /// `Err` leaves the session unchanged (same contract and same error
    /// values as the unsharded session).
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`] on invalid deltas, and
    /// [`StreamError::Diverged`] if due auto-compaction finds a
    /// shard diverging from its batch rebuild.
    pub fn apply(&mut self, delta: &RowDelta) -> Result<Vec<ScoreDiff>, StreamError> {
        if self.poisoned {
            return Err(StreamError::Diverged(
                "session poisoned: a partial compaction failure left shard-local and \
                 router row ids inconsistent; rebuild the session from a snapshot"
                    .into(),
            ));
        }
        let locals = self.router.route(delta)?;
        par_map_mut(&mut self.shards, self.threads, |s, shard| {
            shard
                .apply(&locals[s])
                .expect("router-validated delta slices apply cleanly")
        });
        let diffs = (0..self.candidates.len())
            .map(|cid| {
                self.sync_candidate(cid);
                let after = self.merged_scores(cid);
                let diff = ScoreDiff {
                    candidate: cid,
                    before: self.candidates[cid].last,
                    after,
                };
                self.candidates[cid].last = after;
                diff
            })
            .collect();
        self.deltas_applied += 1;
        if let Some(every) = self.compact_every {
            if self.deltas_applied.is_multiple_of(every) {
                self.compact()?;
            }
        }
        Ok(diffs)
    }

    /// Materialises the live rows in global row order as one compact
    /// [`Relation`] — equals the snapshot of an unsharded session over
    /// the same history.
    pub fn snapshot(&self) -> Relation {
        let schema = self.shards[0].relation().schema().clone();
        let mut rel = Relation::empty(schema);
        for slot in 0..self.router.n_slots() {
            if let Some((shard, local)) = self.router.placement_of(slot as RowId) {
                rel.push_row(
                    self.shards[shard as usize]
                        .relation()
                        .log()
                        .row(local as usize),
                )
                .expect("shard rows match the shared schema");
            }
        }
        rel
    }

    /// Compacts every shard — each shard verifies its incremental PLIs,
    /// contingency tables and scores against a batch rebuild of **its
    /// slice of the snapshot** — then renumbers the global ids and
    /// rebuilds the Y-id coordination state.
    ///
    /// # Errors
    /// [`StreamError::Diverged`] if any shard's incremental state
    /// disagrees with its batch rebuild (that shard is left unswapped for
    /// post-mortem). If the failure strikes after at least one shard had
    /// already compacted, shard-local ids and the router's placements no
    /// longer agree — the session is **poisoned**: score reads keep
    /// working, but every further `apply`/`compact` is refused with a
    /// `Diverged` error rather than silently tombstoning wrong rows.
    pub fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        if self.poisoned {
            return Err(StreamError::Diverged(
                "session poisoned by an earlier partial compaction failure".into(),
            ));
        }
        let before: Vec<StreamScores> = (0..self.candidates.len())
            .map(|cid| self.candidates[cid].last)
            .collect();
        let mut rows_dropped = 0;
        let mut n_live = 0;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            match shard.compact() {
                Ok(report) => {
                    rows_dropped += report.rows_dropped;
                    n_live += report.n_live;
                }
                Err(e) => {
                    // Shards 0..i already renumbered their local ids but
                    // the router still holds the old placements.
                    self.poisoned = i > 0;
                    return Err(e);
                }
            }
        }
        self.router.compact();
        // Shard compaction reset the side-id dictionaries: rebuild the
        // global Y space from scratch.
        for (cid, before) in before.iter().enumerate() {
            let cand = &mut self.candidates[cid];
            cand.y_global.clear();
            cand.y_remap = vec![Vec::new(); self.shards.len()];
            self.sync_candidate(cid);
            debug_assert!(
                self.merged_scores(cid).bits_eq(before),
                "compaction must not move merged scores"
            );
        }
        Ok(CompactionReport {
            rows_dropped,
            candidates_checked: self.candidates.len(),
            n_live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::AttrId;

    fn schema3() -> Schema {
        Schema::new(["A", "B", "C"]).unwrap()
    }

    fn row(a: i64, b: i64, c: i64) -> Vec<Value> {
        vec![Value::Int(a), Value::Int(b), Value::Int(c)]
    }

    fn fixture_rows() -> Vec<Vec<Value>> {
        (0..40)
            .map(|i| row(i % 7, (i % 7) * 2 + i64::from(i == 13), i % 3))
            .collect()
    }

    fn sharded(n: usize) -> ShardedSession {
        ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), n).unwrap()
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), 0),
            Err(StreamError::ShardConfig(_))
        ));
    }

    #[test]
    fn out_of_schema_shard_key_rejected() {
        assert!(matches!(
            ShardedSession::new(schema3(), AttrSet::single(AttrId(9)), 2),
            Err(StreamError::ShardConfig(_))
        ));
    }

    #[test]
    fn lhs_must_contain_shard_key_when_sharded() {
        let mut s = sharded(3);
        assert!(matches!(
            s.subscribe(Fd::linear(AttrId(1), AttrId(2))),
            Err(StreamError::ShardConfig(_))
        ));
        // Single-shard sessions accept any candidate.
        let mut s1 = sharded(1);
        assert!(s1.subscribe(Fd::linear(AttrId(1), AttrId(2))).is_ok());
    }

    #[test]
    fn sharded_matches_single_session_bit_exactly() {
        for n in [1, 2, 3] {
            let mut sharded = sharded(n);
            let mut single = StreamSession::new(schema3());
            let cid_s = sharded.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
            let cid_1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
            sharded
                .apply(&RowDelta::insert_only(fixture_rows()))
                .unwrap();
            single
                .apply(&RowDelta::insert_only(fixture_rows()))
                .unwrap();
            assert!(
                sharded.scores(cid_s).bits_eq(&single.scores(cid_1)),
                "n={n}"
            );
            // Deletes by the same global ids move both identically.
            let d = RowDelta::delete_only([13, 0, 7]);
            let diff_s = sharded.apply(&d).unwrap();
            let diff_1 = single.apply(&d).unwrap();
            assert!(diff_s[0].after.bits_eq(&diff_1[0].after), "n={n}");
            assert_eq!(sharded.n_live(), single.relation().n_live());
        }
    }

    #[test]
    fn routing_is_total_and_size_preserving() {
        let mut s = sharded(4);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        assert_eq!(s.shard_sizes().iter().sum::<usize>(), 40);
        assert_eq!(s.n_live(), 40);
        // 7 distinct keys over 4 shards: no shard can hold all rows.
        assert!(s.shard_sizes().iter().all(|&sz| sz < 40));
    }

    #[test]
    fn invalid_deltas_leave_sharded_session_untouched() {
        let mut s = sharded(2);
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        let before = s.scores(cid);
        assert_eq!(
            s.apply(&RowDelta::delete_only([999])),
            Err(StreamError::UnknownRow(999))
        );
        assert_eq!(
            s.apply(&RowDelta::delete_only([3, 3])),
            Err(StreamError::AlreadyDeleted(3))
        );
        let bad = RowDelta {
            inserts: vec![vec![Value::Int(1)]],
            deletes: vec![1],
        };
        assert!(matches!(s.apply(&bad), Err(StreamError::Arity { .. })));
        assert_eq!(s.n_live(), 40);
        assert!(s.scores(cid).bits_eq(&before));
    }

    #[test]
    fn snapshot_preserves_global_row_order() {
        let mut s = sharded(3);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([5, 20])).unwrap();
        let snap = s.snapshot();
        let want: Vec<Vec<Value>> = fixture_rows()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 5 && *i != 20)
            .map(|(_, r)| r)
            .collect();
        assert_eq!(snap.n_rows(), want.len());
        for (i, row) in want.iter().enumerate() {
            assert_eq!(&snap.row(i), row);
        }
    }

    #[test]
    fn compaction_verifies_per_shard_and_keeps_scores() {
        let mut s = sharded(3);
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([2, 3, 13])).unwrap();
        let before = s.scores(cid);
        let report = s.compact().unwrap();
        assert_eq!(report.rows_dropped, 3);
        assert_eq!(report.n_live, 37);
        assert_eq!(report.candidates_checked, 1);
        assert!(s.scores(cid).bits_eq(&before));
        // Global ids renumbered densely: 0..37 deletable again.
        s.apply(&RowDelta::delete_only([36])).unwrap();
        assert_eq!(s.n_live(), 36);
        assert_eq!(
            s.apply(&RowDelta::delete_only([37])),
            Err(StreamError::UnknownRow(37))
        );
    }

    #[test]
    fn auto_compaction_runs_on_schedule() {
        let mut s = ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), 2)
            .unwrap()
            .with_compaction_every(2);
        s.subscribe(Fd::linear(AttrId(0), AttrId(2))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([0, 1])).unwrap(); // 2nd delta -> compacts
        assert_eq!(s.router().n_slots(), 38);
        assert_eq!(s.n_live(), 38);
    }

    #[test]
    fn from_relation_routes_existing_rows() {
        let rel = Relation::from_rows(schema3(), fixture_rows()).unwrap();
        let mut s = ShardedSession::from_relation(rel, AttrSet::single(AttrId(0)), 3).unwrap();
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let mut single = StreamSession::new(schema3());
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        single
            .apply(&RowDelta::insert_only(fixture_rows()))
            .unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        assert_eq!(s.n_live(), 40);
    }

    #[test]
    fn multi_attribute_lhs_with_threads() {
        let fd = Fd::new(
            AttrSet::new([AttrId(0), AttrId(2)]),
            AttrSet::single(AttrId(1)),
        )
        .unwrap();
        let mut s = sharded(3).with_threads(3);
        let cid = s.subscribe(fd.clone()).unwrap();
        let mut single = StreamSession::new(schema3());
        let c1 = single.subscribe(fd).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        single
            .apply(&RowDelta::insert_only(fixture_rows()))
            .unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }
}
