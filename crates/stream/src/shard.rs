//! Sharded streaming: hash-partitioned [`StreamSession`] shards behind a
//! single-session facade.
//!
//! The ROADMAP scale-out item: the histogram score reads of [`IncTable`]
//! are order-independent, so per-shard tables can be merged by summing
//! counts and histograms. The partitioning invariant that makes the merge
//! *correct* is that every X-group of every tracked candidate lives
//! wholly inside one shard — guaranteed by routing each row on the hash
//! of its **shard key** values, where the shard key is a subset of every
//! subscribed FD's LHS (equal X values ⇒ equal key values ⇒ same shard).
//! The Y margins are the one aggregate that spans shards; the coordinator
//! owns a per-candidate global Y-id space and the merge re-derives the
//! column totals through it.
//!
//! * [`DeltaRouter`] — splits a global [`RowDelta`] into per-shard deltas,
//!   owning the global-row-id ⇄ (shard, local-row-id) placement map.
//! * [`ShardedSession`] — the [`StreamSession`] API over N shards:
//!   `apply` fans the routed deltas across shards on `afd-parallel`
//!   scoped threads, and score reads merge the per-shard [`IncTable`]s
//!   **bit-exactly** — a `ShardedSession` and a single `StreamSession`
//!   over the same deltas return bit-identical `f64`s (pinned by
//!   proptests for N ∈ {1, 2, 3, 7}).
//!
//! Compaction verification runs per shard against that shard's slice of
//! the snapshot, exactly as the ROADMAP prescribed.

use std::collections::HashMap;

use afd_parallel::par_map_mut;
use afd_relation::{AttrId, AttrSet, Column, Dictionary, Fd, Relation, Schema, Value, NULL_CODE};

use crate::backend::{InProcShard, ProcessShard, ShardBackend, WorkerCommand};
use crate::delta::{RowDelta, RowId, StreamError};
use crate::session::{CompactionReport, ScoreDiff};
use crate::table::{IncTable, StreamScores};

/// Stable 64-bit FNV-1a over a row's shard-key values. Deterministic
/// across processes (unlike `DefaultHasher` guarantees), so a persisted
/// shard layout can be re-derived.
fn key_hash(values: impl Iterator<Item = Value>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for v in values {
        match v {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                i.to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Float(f) => {
                eat(2);
                f.get()
                    .to_bits()
                    .to_le_bytes()
                    .into_iter()
                    .for_each(&mut eat);
            }
            Value::Str(s) => {
                eat(3);
                s.bytes().for_each(&mut eat);
                eat(0xff);
            }
        }
    }
    h
}

/// Hash-partitions row deltas across `n_shards` by shard-key value and
/// owns the global ⇄ per-shard row-id translation.
///
/// Global row ids follow [`StreamSession`] semantics exactly: assigned
/// densely in arrival order, tombstoned by delete, renumbered by
/// [`DeltaRouter::compact`].
#[derive(Debug, Clone)]
pub struct DeltaRouter {
    key: AttrSet,
    arity: usize,
    n_shards: usize,
    /// Global slot -> (shard, shard-local slot).
    placement: Vec<(u32, RowId)>,
    /// Global slot liveness (mirrors the shards' tombstones).
    live: Vec<bool>,
    n_live: usize,
    /// Next local slot per shard.
    shard_slots: Vec<RowId>,
}

impl DeltaRouter {
    /// A router over `n_shards` shards keyed by `key` (attribute ids must
    /// lie inside a schema of `arity` attributes).
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero shards or an out-of-schema
    /// key attribute.
    pub fn new(key: AttrSet, arity: usize, n_shards: usize) -> Result<Self, StreamError> {
        if n_shards == 0 {
            return Err(StreamError::ShardConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if let Some(&a) = key.ids().iter().find(|a| a.index() >= arity) {
            return Err(StreamError::ShardConfig(format!(
                "shard key attribute {a} outside the {arity}-attribute schema"
            )));
        }
        Ok(DeltaRouter {
            key,
            arity,
            n_shards,
            placement: Vec::new(),
            live: Vec::new(),
            n_live: 0,
            shard_slots: vec![0; n_shards],
        })
    }

    /// The routing key.
    pub fn shard_key(&self) -> &AttrSet {
        &self.key
    }

    /// Number of shards routed across.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Global slots assigned so far (tombstones included).
    pub fn n_slots(&self) -> usize {
        self.placement.len()
    }

    /// Live global rows.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// The (shard, local slot) placement of live global row `id`.
    pub fn placement_of(&self, id: RowId) -> Option<(u32, RowId)> {
        (self.live.get(id as usize) == Some(&true)).then(|| self.placement[id as usize])
    }

    /// The shard a row with these values routes to.
    pub fn shard_of_row(&self, row: &[Value]) -> usize {
        if self.n_shards == 1 {
            return 0;
        }
        let h = key_hash(self.key.ids().iter().map(|a| row[a.index()].clone()));
        (h % self.n_shards as u64) as usize
    }

    /// Splits one global delta into per-shard deltas, assigning global
    /// ids to the inserts and translating delete ids to shard-local ones.
    /// Validation happens up front — on `Err` the router is unchanged
    /// (the same atomicity contract as [`StreamSession::apply`]).
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`], exactly as the unsharded session
    /// would report them.
    pub fn route(&mut self, delta: &RowDelta) -> Result<Vec<RowDelta>, StreamError> {
        let mut seen: std::collections::HashSet<RowId> =
            std::collections::HashSet::with_capacity(delta.deletes.len());
        for &id in &delta.deletes {
            if (id as usize) >= self.placement.len() {
                return Err(StreamError::UnknownRow(id));
            }
            if !self.live[id as usize] || !seen.insert(id) {
                return Err(StreamError::AlreadyDeleted(id));
            }
        }
        for row in &delta.inserts {
            if row.len() != self.arity {
                return Err(StreamError::Arity {
                    expected: self.arity,
                    got: row.len(),
                });
            }
        }
        let mut locals = vec![RowDelta::new(); self.n_shards];
        for &id in &delta.deletes {
            let (shard, local) = self.placement[id as usize];
            self.live[id as usize] = false;
            self.n_live -= 1;
            locals[shard as usize].deletes.push(local);
        }
        for row in &delta.inserts {
            let shard = self.shard_of_row(row);
            let local = self.shard_slots[shard];
            self.shard_slots[shard] += 1;
            self.placement.push((shard as u32, local));
            self.live.push(true);
            self.n_live += 1;
            locals[shard].inserts.push(row.clone());
        }
        Ok(locals)
    }

    /// Renumbers after the shards compacted: tombstoned slots vanish and
    /// both global and shard-local ids become dense again (in arrival
    /// order, matching [`StreamSession::compact`]'s renumbering).
    pub fn compact(&mut self) {
        let mut next_local = vec![0 as RowId; self.n_shards];
        let mut placement = Vec::with_capacity(self.n_live);
        for (slot, &(shard, _)) in self.placement.iter().enumerate() {
            if self.live[slot] {
                placement.push((shard, next_local[shard as usize]));
                next_local[shard as usize] += 1;
            }
        }
        self.placement = placement;
        self.live = vec![true; self.n_live];
        self.shard_slots = next_local;
    }
}

/// Per-candidate coordinator state: the global Y-id space shared by all
/// shards (column totals are the one aggregate that spans shards).
#[derive(Debug, Clone)]
struct ShardedCandidate {
    fd: Fd,
    /// Y value tuple -> global Y id.
    y_global: HashMap<Vec<Value>, u32>,
    /// Per shard: local Y side id -> global Y id.
    y_remap: Vec<Vec<u32>>,
    last: StreamScores,
}

/// N hash-partitioned shards behind the single-session API: same
/// `subscribe`/`apply`/`scores` surface, same row-id semantics,
/// bit-identical score reads — generic over **where the shards live**
/// ([`ShardBackend`]).
///
/// * `ShardedSession<InProcShard>` (the default) keeps every shard as a
///   [`crate::StreamSession`] in this process — the original topology.
/// * `ShardedSession<ProcessShard>` (via [`ShardedSession::spawn`])
///   drives one `afd shard-worker` child process per shard over the
///   checksummed `afd-wire` stdin/stdout protocol: the coordinator
///   routes encoded delta slices out, decodes each worker's refreshed
///   [`IncTable`] state back, and merges through the existing
///   [`IncTable::merge`] — **bit-identical** to the in-process path
///   (every maintained aggregate is an integer; the codec is exact).
///
/// `apply` routes the delta ([`DeltaRouter`]), fans the per-shard slices
/// across `afd-parallel` scoped threads, then refreshes each candidate's
/// merged scores. Because each shard's apply only touches its own
/// O(delta-slice) state, the *work per shard* shrinks roughly 1/N — the
/// quantity `record_shard` benchmarks (`record_wire` additionally
/// records the process-backend transport overhead).
#[derive(Debug, Clone)]
pub struct ShardedSession<B: ShardBackend = InProcShard> {
    schema: Schema,
    shards: Vec<B>,
    router: DeltaRouter,
    candidates: Vec<ShardedCandidate>,
    threads: usize,
    deltas_applied: u64,
    compact_every: Option<u64>,
    /// Why the session refuses further mutation, when it does:
    /// * a compaction failed after at least one shard had already
    ///   compacted (shard-local row ids renumbered but the router did
    ///   not), or
    /// * a shard backend failed mid-fan-out (a worker died or sent
    ///   corrupt bytes), leaving the router ahead of the shards.
    ///
    /// Score reads keep serving the last consistent (pre-failure) state;
    /// `apply`/`compact` return errors instead of corrupting rows.
    poisoned: Option<String>,
}

impl ShardedSession<InProcShard> {
    /// An empty in-process sharded session over `schema`, routing on
    /// `shard_key`.
    ///
    /// With `n_shards == 1` the key is irrelevant (everything lands in
    /// shard 0) and any FD may subscribe; with more shards every
    /// subscribed FD's LHS must contain the key.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero shards or an out-of-schema
    /// key attribute.
    pub fn new(schema: Schema, shard_key: AttrSet, n_shards: usize) -> Result<Self, StreamError> {
        let shards = (0..n_shards)
            .map(|_| InProcShard::new(schema.clone()))
            .collect();
        Self::with_backends(schema, shard_key, shards)
    }

    /// An in-process sharded session whose rows start as `rel` (all
    /// live), routed to their shards in row order.
    ///
    /// # Errors
    /// As [`ShardedSession::new`].
    pub fn from_relation(
        rel: Relation,
        shard_key: AttrSet,
        n_shards: usize,
    ) -> Result<Self, StreamError> {
        Self::new(rel.schema().clone(), shard_key, n_shards)?.seeded(&rel)
    }
}

impl ShardedSession<ProcessShard> {
    /// An empty **process-backed** sharded session: spawns one
    /// `afd shard-worker` child per shard via `worker` and initialises
    /// each over the wire.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero workers or an out-of-schema
    /// key attribute; [`StreamError::Transport`] when a worker cannot be
    /// spawned or fails its Init handshake.
    pub fn spawn(
        schema: Schema,
        shard_key: AttrSet,
        n_shards: usize,
        worker: &WorkerCommand,
    ) -> Result<Self, StreamError> {
        if n_shards == 0 {
            return Err(StreamError::ShardConfig(
                "worker count must be at least 1".into(),
            ));
        }
        let shards = (0..n_shards)
            .map(|_| ProcessShard::spawn(worker, &schema))
            .collect::<Result<Vec<_>, _>>()?;
        Self::with_backends(schema, shard_key, shards)
    }

    /// As [`ShardedSession::spawn`], seeding the workers with `rel`'s
    /// rows (routed, in row order).
    ///
    /// # Errors
    /// As [`ShardedSession::spawn`].
    pub fn spawn_from_relation(
        rel: Relation,
        shard_key: AttrSet,
        n_shards: usize,
        worker: &WorkerCommand,
    ) -> Result<Self, StreamError> {
        Self::spawn(rel.schema().clone(), shard_key, n_shards, worker)?.seeded(&rel)
    }
}

impl<B: ShardBackend> ShardedSession<B> {
    /// A sharded session over caller-built backends (one per shard).
    /// This is the plug point: `AfdEngine` hands in
    /// [`crate::AnyShard`]s picked by configuration.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero backends or an
    /// out-of-schema key attribute.
    pub fn with_backends(
        schema: Schema,
        shard_key: AttrSet,
        shards: Vec<B>,
    ) -> Result<Self, StreamError> {
        let router = DeltaRouter::new(shard_key, schema.arity(), shards.len())?;
        Ok(ShardedSession {
            schema,
            shards,
            router,
            candidates: Vec::new(),
            threads: 1,
            deltas_applied: 0,
            compact_every: None,
            poisoned: None,
        })
    }

    /// Routes and applies `rel`'s rows as the starting population
    /// (counters reset, so the seed does not count as an applied delta).
    ///
    /// # Errors
    /// [`StreamError::Transport`] when a worker backend fails the seed
    /// apply; [`StreamError::Arity`] when `rel` disagrees with the
    /// session schema.
    pub fn seeded(mut self, rel: &Relation) -> Result<Self, StreamError> {
        let seed = RowDelta::insert_only((0..rel.n_rows()).map(|r| rel.row(r)));
        self.apply(&seed)?;
        self.deltas_applied = 0;
        Ok(self)
    }

    /// Fans per-shard applies over up to `threads` scoped workers
    /// (default 1: inline, deterministic either way).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables automatic (per-shard verified) compaction after every
    /// `every` applied deltas.
    #[must_use]
    pub fn with_compaction_every(mut self, every: u64) -> Self {
        self.compact_every = Some(every.max(1));
        self
    }

    /// The schema every shard serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing layer (shard key, placements, live counts).
    pub fn router(&self) -> &DeltaRouter {
        &self.router
    }

    /// Live rows across all shards.
    ///
    /// Diagnostic counter: on a **poisoned** session this reflects the
    /// router's view, which may include a partially-fanned-out delta —
    /// only [`ShardedSession::scores`] is guaranteed to serve the last
    /// consistent state there ([`ShardedSession::snapshot`] and
    /// [`ShardedSession::merged_table`] refuse with typed errors).
    pub fn n_live(&self) -> usize {
        self.router.n_live()
    }

    /// Live rows per shard — how even the hash partitioning came out.
    /// Diagnostic, with the same poisoned-session caveat as
    /// [`ShardedSession::n_live`].
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(ShardBackend::n_live).collect()
    }

    /// Number of tracked candidates.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The FD of candidate `cid`.
    pub fn fd(&self, cid: usize) -> &Fd {
        &self.candidates[cid].fd
    }

    /// Direct access to one shard's backend — the fault-injection hook
    /// (tests kill a [`ProcessShard`] here to exercise the transport
    /// error paths).
    pub fn backend_mut(&mut self, shard: usize) -> &mut B {
        &mut self.shards[shard]
    }

    fn check_poisoned(&self) -> Result<(), StreamError> {
        match &self.poisoned {
            Some(why) => Err(StreamError::Transport(format!(
                "session poisoned ({why}); score reads still serve the last \
                 consistent state — rebuild the session (e.g. from a wire \
                 snapshot) to resume mutation"
            ))),
            None => Ok(()),
        }
    }

    /// Subscribes a candidate FD on every shard and returns its candidate
    /// index (re-subscribing returns the existing index).
    ///
    /// # Errors
    /// [`StreamError::UnknownAttr`] for out-of-schema attributes;
    /// [`StreamError::ShardConfig`] when `n_shards > 1` and the FD's LHS
    /// does not contain the shard key (its X-groups would straddle
    /// shards); [`StreamError::Transport`] when a worker backend fails.
    pub fn subscribe(&mut self, fd: Fd) -> Result<usize, StreamError> {
        if let Some(i) = self.candidates.iter().position(|c| c.fd == fd) {
            return Ok(i);
        }
        self.check_poisoned()?;
        // Coordinator-side validation, uniform across backends.
        for &a in fd.lhs().ids().iter().chain(fd.rhs().ids()) {
            if a.index() >= self.schema.arity() {
                return Err(StreamError::UnknownAttr(a.0));
            }
        }
        if self.shards.len() > 1 && !self.router.shard_key().is_subset(fd.lhs()) {
            return Err(StreamError::ShardConfig(format!(
                "candidate LHS {:?} does not contain the shard key {:?}",
                fd.lhs().ids(),
                self.router.shard_key().ids()
            )));
        }
        for (i, shard) in self.shards.iter_mut().enumerate() {
            match shard.subscribe(&fd) {
                Ok(cid) => debug_assert_eq!(cid, self.candidates.len(), "lockstep subscribes"),
                Err(e) => {
                    // Validation passed above, so this is a backend (i.e.
                    // transport) failure; earlier shards may already have
                    // subscribed — refuse further mutation.
                    self.poisoned = Some(format!("subscribe fan-out failed on shard {i}: {e}"));
                    return Err(e);
                }
            }
        }
        self.candidates.push(ShardedCandidate {
            fd,
            y_global: HashMap::new(),
            y_remap: vec![Vec::new(); self.shards.len()],
            last: StreamScores::exact(),
        });
        let cid = self.candidates.len() - 1;
        self.sync_candidate(cid);
        self.candidates[cid].last = self.merged_scores(cid);
        Ok(cid)
    }

    /// The merged score read: a single shard's table is read directly
    /// (merging one part is a score-level identity); N > 1 sums the
    /// per-shard score aggregates via [`IncTable::merged_scores`]
    /// (O(histograms + column totals) — the merged group/cell maps are
    /// never materialised on this path).
    fn merged_scores(&self, cid: usize) -> StreamScores {
        if self.shards.len() == 1 {
            self.shards[0].table(cid).scores()
        } else {
            let cand = &self.candidates[cid];
            IncTable::merged_scores(
                self.shards
                    .iter()
                    .enumerate()
                    .map(|(s, shard)| (shard.table(cid), cand.y_remap[s].as_slice())),
            )
        }
    }

    /// Extends candidate `cid`'s per-shard Y remaps with any side ids the
    /// shards assigned since the last sync. Global ids are handed out in
    /// (shard, local-id) scan order — deterministic, and irrelevant to
    /// scores (histogram reductions never see Y identity).
    fn sync_candidate(&mut self, cid: usize) {
        let cand = &mut self.candidates[cid];
        for (s, shard) in self.shards.iter().enumerate() {
            let known = cand.y_remap[s].len();
            for id in known..shard.n_y_side_ids(cid) {
                let key = shard.y_side_values(cid, id as u32);
                let next = cand.y_global.len() as u32;
                let g = *cand.y_global.entry(key).or_insert(next);
                cand.y_remap[s].push(g);
            }
        }
    }

    /// Merges candidate `cid`'s per-shard tables into one [`IncTable`]
    /// over the whole relation (O(aggregate state), not O(rows)).
    ///
    /// # Errors
    /// [`StreamError::Transport`] on a poisoned session: after a
    /// mid-fan-out failure the shard tables and the coordinator's Y
    /// remaps may disagree, so a merge could panic or lie — only the
    /// cached [`ShardedSession::scores`] stay served.
    pub fn merged_table(&self, cid: usize) -> Result<IncTable, StreamError> {
        self.check_poisoned()?;
        let cand = &self.candidates[cid];
        Ok(IncTable::merge(self.shards.iter().enumerate().map(
            |(s, shard)| (shard.table(cid), cand.y_remap[s].as_slice()),
        )))
    }

    /// The current merged scores of candidate `cid` — bit-identical to a
    /// single [`crate::StreamSession`] over the same delta history.
    pub fn scores(&self, cid: usize) -> StreamScores {
        self.candidates[cid].last
    }

    /// Applies one global delta: routes it, fans the per-shard slices
    /// across the shards in parallel, and reports one merged
    /// [`ScoreDiff`] per candidate.
    ///
    /// Validation happens in the router before anything mutates, so a
    /// validation `Err` leaves the session unchanged (same contract and
    /// same error values as the unsharded session). A **backend**
    /// failure mid-fan-out (a killed worker, a corrupt frame) poisons
    /// the session instead: score reads keep serving the pre-delta
    /// state, and every further mutation is refused with a typed
    /// [`StreamError::Transport`].
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`] on invalid deltas,
    /// [`StreamError::Transport`] on backend failure, and
    /// [`StreamError::Diverged`] if due auto-compaction finds a
    /// shard diverging from its batch rebuild.
    pub fn apply(&mut self, delta: &RowDelta) -> Result<Vec<ScoreDiff>, StreamError> {
        self.check_poisoned()?;
        let locals = self.router.route(delta)?;
        let results = par_map_mut(&mut self.shards, self.threads, |s, shard| {
            shard.apply(&locals[s])
        });
        if let Some(err) = results.into_iter().find_map(Result::err) {
            // The router already re-placed the delta and some shards may
            // have absorbed their slice — the coordinator's candidate
            // scores still reflect the pre-delta state, so reads stay
            // consistent; mutation is refused from here on.
            self.poisoned = Some(format!("delta fan-out failed: {err}"));
            return Err(err);
        }
        let diffs = (0..self.candidates.len())
            .map(|cid| {
                self.sync_candidate(cid);
                let after = self.merged_scores(cid);
                let diff = ScoreDiff {
                    candidate: cid,
                    before: self.candidates[cid].last,
                    after,
                };
                self.candidates[cid].last = after;
                diff
            })
            .collect();
        self.deltas_applied += 1;
        if let Some(every) = self.compact_every {
            if self.deltas_applied.is_multiple_of(every) {
                self.compact()?;
            }
        }
        Ok(diffs)
    }

    /// Materialises the live rows in global row order as one compact
    /// [`Relation`] — row-equivalent to the snapshot of an unsharded
    /// session over the same history.
    ///
    /// This is a **code-level merge** (the ROADMAP-flagged fix): each
    /// shard ships its snapshot columns once, per-column dictionaries
    /// are unified by interning each shard's *distinct* values
    /// (O(Σ dictionary sizes) `Value` handling in total), and every row
    /// is then one remapped `u32` code copy per column — O(rows) code
    /// copies like [`Relation::filter_rows`], not O(rows · arity)
    /// `Value` round-trips. Dictionary code numbering may differ from an
    /// unsharded session's (grouping kernels remap densely and never
    /// observe it); rows and their order are identical.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when a worker's snapshot request
    /// fails — or when the session is poisoned (the router's placements
    /// are ahead of the shard contents, so a merged snapshot would be
    /// inconsistent with the served scores).
    pub fn snapshot(&mut self) -> Result<Relation, StreamError> {
        self.check_poisoned()?;
        let locals = self
            .shards
            .iter_mut()
            .map(ShardBackend::snapshot)
            .collect::<Result<Vec<_>, _>>()?;
        let arity = self.schema.arity();
        let mut codes: Vec<Vec<u32>> = (0..arity)
            .map(|_| Vec::with_capacity(self.router.n_live()))
            .collect();
        let mut dicts: Vec<Dictionary> = (0..arity).map(|_| Dictionary::new()).collect();
        // Per shard, per column: local dictionary code -> merged code.
        let mut remaps: Vec<Vec<Vec<u32>>> = Vec::with_capacity(locals.len());
        for snap in &locals {
            let mut per_col = Vec::with_capacity(arity);
            for (c, dict) in dicts.iter_mut().enumerate() {
                let col = snap.column(AttrId(c as u32));
                per_col.push(
                    col.dict()
                        .iter()
                        .map(|(_, v)| dict.intern(v.clone()))
                        .collect::<Vec<u32>>(),
                );
            }
            remaps.push(per_col);
        }
        // Live rows of a shard appear in its snapshot in arrival order,
        // which is also their relative global order — so a per-shard
        // cursor walks each snapshot exactly once.
        let mut cursors = vec![0usize; self.shards.len()];
        for slot in 0..self.router.n_slots() {
            if let Some((shard, _)) = self.router.placement_of(slot as RowId) {
                let s = shard as usize;
                let r = cursors[s];
                cursors[s] += 1;
                for (c, out) in codes.iter_mut().enumerate() {
                    let code = locals[s].column(AttrId(c as u32)).codes()[r];
                    out.push(if code == NULL_CODE {
                        NULL_CODE
                    } else {
                        remaps[s][c][code as usize]
                    });
                }
            }
        }
        let columns = codes
            .into_iter()
            .zip(dicts)
            .map(|(codes, dict)| Column::from_parts(codes, dict))
            .collect();
        Relation::from_columns(self.schema.clone(), columns)
            .map_err(|e| StreamError::Relation(e.to_string()))
    }

    /// Compacts every shard — each shard verifies its incremental PLIs,
    /// contingency tables and scores against a batch rebuild of **its
    /// slice of the snapshot** — then renumbers the global ids and
    /// rebuilds the Y-id coordination state.
    ///
    /// # Errors
    /// [`StreamError::Diverged`] if any shard's incremental state
    /// disagrees with its batch rebuild (that shard is left unswapped for
    /// post-mortem), [`StreamError::Transport`] on worker failure. If the
    /// failure strikes after at least one shard had already compacted —
    /// or the transport itself failed — shard-local ids and the router's
    /// placements may no longer agree: the session is **poisoned** (score
    /// reads keep working; every further `apply`/`compact` is refused).
    pub fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        self.check_poisoned()?;
        let before: Vec<StreamScores> = (0..self.candidates.len())
            .map(|cid| self.candidates[cid].last)
            .collect();
        let mut rows_dropped = 0;
        let mut n_live = 0;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            match shard.compact() {
                Ok(report) => {
                    rows_dropped += report.rows_dropped;
                    n_live += report.n_live;
                }
                Err(e) => {
                    // Shards 0..i already renumbered their local ids but
                    // the router still holds the old placements. A
                    // transport failure is unrecoverable regardless of
                    // position (the worker may or may not have compacted).
                    if i > 0 || matches!(e, StreamError::Transport(_)) {
                        self.poisoned =
                            Some(format!("compaction fan-out failed on shard {i}: {e}"));
                    }
                    return Err(e);
                }
            }
        }
        self.router.compact();
        // Shard compaction reset the side-id dictionaries: rebuild the
        // global Y space from scratch.
        for (cid, before) in before.iter().enumerate() {
            let cand = &mut self.candidates[cid];
            cand.y_global.clear();
            cand.y_remap = vec![Vec::new(); self.shards.len()];
            self.sync_candidate(cid);
            debug_assert!(
                self.merged_scores(cid).bits_eq(before),
                "compaction must not move merged scores"
            );
        }
        Ok(CompactionReport {
            rows_dropped,
            candidates_checked: self.candidates.len(),
            n_live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::StreamSession;

    fn schema3() -> Schema {
        Schema::new(["A", "B", "C"]).unwrap()
    }

    fn row(a: i64, b: i64, c: i64) -> Vec<Value> {
        vec![Value::Int(a), Value::Int(b), Value::Int(c)]
    }

    fn fixture_rows() -> Vec<Vec<Value>> {
        (0..40)
            .map(|i| row(i % 7, (i % 7) * 2 + i64::from(i == 13), i % 3))
            .collect()
    }

    fn sharded(n: usize) -> ShardedSession {
        ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), n).unwrap()
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), 0),
            Err(StreamError::ShardConfig(_))
        ));
    }

    #[test]
    fn out_of_schema_shard_key_rejected() {
        assert!(matches!(
            ShardedSession::new(schema3(), AttrSet::single(AttrId(9)), 2),
            Err(StreamError::ShardConfig(_))
        ));
    }

    #[test]
    fn lhs_must_contain_shard_key_when_sharded() {
        let mut s = sharded(3);
        assert!(matches!(
            s.subscribe(Fd::linear(AttrId(1), AttrId(2))),
            Err(StreamError::ShardConfig(_))
        ));
        // Single-shard sessions accept any candidate.
        let mut s1 = sharded(1);
        assert!(s1.subscribe(Fd::linear(AttrId(1), AttrId(2))).is_ok());
    }

    #[test]
    fn sharded_matches_single_session_bit_exactly() {
        for n in [1, 2, 3] {
            let mut sharded = sharded(n);
            let mut single = StreamSession::new(schema3());
            let cid_s = sharded.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
            let cid_1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
            sharded
                .apply(&RowDelta::insert_only(fixture_rows()))
                .unwrap();
            single
                .apply(&RowDelta::insert_only(fixture_rows()))
                .unwrap();
            assert!(
                sharded.scores(cid_s).bits_eq(&single.scores(cid_1)),
                "n={n}"
            );
            // Deletes by the same global ids move both identically.
            let d = RowDelta::delete_only([13, 0, 7]);
            let diff_s = sharded.apply(&d).unwrap();
            let diff_1 = single.apply(&d).unwrap();
            assert!(diff_s[0].after.bits_eq(&diff_1[0].after), "n={n}");
            assert_eq!(sharded.n_live(), single.relation().n_live());
        }
    }

    #[test]
    fn routing_is_total_and_size_preserving() {
        let mut s = sharded(4);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        assert_eq!(s.shard_sizes().iter().sum::<usize>(), 40);
        assert_eq!(s.n_live(), 40);
        // 7 distinct keys over 4 shards: no shard can hold all rows.
        assert!(s.shard_sizes().iter().all(|&sz| sz < 40));
    }

    #[test]
    fn invalid_deltas_leave_sharded_session_untouched() {
        let mut s = sharded(2);
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        let before = s.scores(cid);
        assert_eq!(
            s.apply(&RowDelta::delete_only([999])),
            Err(StreamError::UnknownRow(999))
        );
        assert_eq!(
            s.apply(&RowDelta::delete_only([3, 3])),
            Err(StreamError::AlreadyDeleted(3))
        );
        let bad = RowDelta {
            inserts: vec![vec![Value::Int(1)]],
            deletes: vec![1],
        };
        assert!(matches!(s.apply(&bad), Err(StreamError::Arity { .. })));
        assert_eq!(s.n_live(), 40);
        assert!(s.scores(cid).bits_eq(&before));
    }

    #[test]
    fn snapshot_preserves_global_row_order() {
        let mut s = sharded(3);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([5, 20])).unwrap();
        let snap = s.snapshot().expect("in-process snapshot");
        let want: Vec<Vec<Value>> = fixture_rows()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 5 && *i != 20)
            .map(|(_, r)| r)
            .collect();
        assert_eq!(snap.n_rows(), want.len());
        for (i, row) in want.iter().enumerate() {
            assert_eq!(&snap.row(i), row);
        }
    }

    #[test]
    fn compaction_verifies_per_shard_and_keeps_scores() {
        let mut s = sharded(3);
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([2, 3, 13])).unwrap();
        let before = s.scores(cid);
        let report = s.compact().unwrap();
        assert_eq!(report.rows_dropped, 3);
        assert_eq!(report.n_live, 37);
        assert_eq!(report.candidates_checked, 1);
        assert!(s.scores(cid).bits_eq(&before));
        // Global ids renumbered densely: 0..37 deletable again.
        s.apply(&RowDelta::delete_only([36])).unwrap();
        assert_eq!(s.n_live(), 36);
        assert_eq!(
            s.apply(&RowDelta::delete_only([37])),
            Err(StreamError::UnknownRow(37))
        );
    }

    #[test]
    fn auto_compaction_runs_on_schedule() {
        let mut s = ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), 2)
            .unwrap()
            .with_compaction_every(2);
        s.subscribe(Fd::linear(AttrId(0), AttrId(2))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([0, 1])).unwrap(); // 2nd delta -> compacts
        assert_eq!(s.router().n_slots(), 38);
        assert_eq!(s.n_live(), 38);
    }

    #[test]
    fn from_relation_routes_existing_rows() {
        let rel = Relation::from_rows(schema3(), fixture_rows()).unwrap();
        let mut s = ShardedSession::from_relation(rel, AttrSet::single(AttrId(0)), 3).unwrap();
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let mut single = StreamSession::new(schema3());
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        single
            .apply(&RowDelta::insert_only(fixture_rows()))
            .unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        assert_eq!(s.n_live(), 40);
    }

    /// An in-process shard that can be told to fail its next request —
    /// the unit-level stand-in for a killed `afd shard-worker` (the real
    /// process-kill test lives in the CLI crate's integration tests).
    struct FlakyShard {
        inner: InProcShard,
        fail_next: bool,
    }

    impl FlakyShard {
        fn trip(&mut self) -> Result<(), StreamError> {
            if self.fail_next {
                return Err(StreamError::Transport("worker killed (simulated)".into()));
            }
            Ok(())
        }
    }

    impl ShardBackend for FlakyShard {
        fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
            self.trip()?;
            self.inner.subscribe(fd)
        }
        fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
            self.trip()?;
            self.inner.apply(delta)
        }
        fn table(&self, cid: usize) -> &IncTable {
            self.inner.table(cid)
        }
        fn n_live(&self) -> usize {
            self.inner.n_live()
        }
        fn n_y_side_ids(&self, cid: usize) -> usize {
            self.inner.n_y_side_ids(cid)
        }
        fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
            self.inner.y_side_values(cid, id)
        }
        fn snapshot(&mut self) -> Result<Relation, StreamError> {
            self.trip()?;
            self.inner.snapshot()
        }
        fn compact(&mut self) -> Result<CompactionReport, StreamError> {
            self.trip()?;
            self.inner.compact()
        }
    }

    #[test]
    fn backend_failure_mid_delta_poisons_but_reads_stay_consistent() {
        let backends: Vec<FlakyShard> = (0..2)
            .map(|_| FlakyShard {
                inner: InProcShard::new(schema3()),
                fail_next: false,
            })
            .collect();
        let mut s =
            ShardedSession::with_backends(schema3(), AttrSet::single(AttrId(0)), backends).unwrap();
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        let before = s.scores(cid);
        // Kill shard 1 mid-delta: a typed transport error comes back and
        // score reads keep serving the pre-delta state.
        s.backend_mut(1).fail_next = true;
        let err = s.apply(&RowDelta::insert_only([row(1, 2, 0)])).unwrap_err();
        assert!(matches!(err, StreamError::Transport(_)), "{err}");
        assert!(s.scores(cid).bits_eq(&before));
        // The session is poisoned: further mutation is refused with a
        // typed error (even though the backend would now succeed), reads
        // still work.
        s.backend_mut(1).fail_next = false;
        assert!(matches!(
            s.apply(&RowDelta::insert_only([row(1, 2, 0)])),
            Err(StreamError::Transport(_))
        ));
        assert!(matches!(s.compact(), Err(StreamError::Transport(_))));
        assert!(s.scores(cid).bits_eq(&before));
        // Snapshot and table merges are refused too: the router's
        // placements ran ahead of the shard contents, so either could
        // panic or contradict the served scores.
        assert!(matches!(s.snapshot(), Err(StreamError::Transport(_))));
        assert!(matches!(
            s.merged_table(cid),
            Err(StreamError::Transport(_))
        ));
    }

    #[test]
    fn code_level_snapshot_matches_value_level_merge() {
        // The code-level snapshot must be row-identical to the old
        // per-row Value materialisation (kept inline here as the
        // reference).
        let mut s = sharded(3);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([1, 8, 21])).unwrap();
        s.apply(&RowDelta::insert_only([
            vec![Value::Null, Value::Int(1), Value::str("z")],
            row(3, 3, 3),
        ]))
        .unwrap();
        // Reference: walk placements and push value-level rows.
        let mut reference = Relation::empty(schema3());
        let mut shard_rows: Vec<Vec<Vec<Value>>> = (0..s.n_shards())
            .map(|i| {
                let snap = s.backend_mut(i).snapshot().unwrap();
                (0..snap.n_rows()).map(|r| snap.row(r)).collect()
            })
            .collect();
        let mut cursors = vec![0usize; shard_rows.len()];
        for slot in 0..s.router().n_slots() {
            if let Some((shard, _)) = s.router().placement_of(slot as RowId) {
                let sidx = shard as usize;
                let r = cursors[sidx];
                cursors[sidx] += 1;
                reference
                    .push_row(std::mem::take(&mut shard_rows[sidx][r]))
                    .unwrap();
            }
        }
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.n_rows(), reference.n_rows());
        for r in 0..snap.n_rows() {
            assert_eq!(snap.row(r), reference.row(r));
        }
    }

    #[test]
    fn multi_attribute_lhs_with_threads() {
        let fd = Fd::new(
            AttrSet::new([AttrId(0), AttrId(2)]),
            AttrSet::single(AttrId(1)),
        )
        .unwrap();
        let mut s = sharded(3).with_threads(3);
        let cid = s.subscribe(fd.clone()).unwrap();
        let mut single = StreamSession::new(schema3());
        let c1 = single.subscribe(fd).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        single
            .apply(&RowDelta::insert_only(fixture_rows()))
            .unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }
}
