//! Sharded streaming: hash-partitioned [`StreamSession`] shards behind a
//! single-session facade.
//!
//! The ROADMAP scale-out item: the histogram score reads of [`IncTable`]
//! are order-independent, so per-shard tables can be merged by summing
//! counts and histograms. The partitioning invariant that makes the merge
//! *correct* is that every X-group of every tracked candidate lives
//! wholly inside one shard — guaranteed by routing each row on the hash
//! of its **shard key** values, where the shard key is a subset of every
//! subscribed FD's LHS (equal X values ⇒ equal key values ⇒ same shard).
//! The Y margins are the one aggregate that spans shards; the coordinator
//! owns a per-candidate global Y-id space and the merge re-derives the
//! column totals through it.
//!
//! * [`DeltaRouter`] — splits a global [`RowDelta`] into per-shard deltas,
//!   owning the global-row-id ⇄ (shard, local-row-id) placement map.
//! * [`ShardedSession`] — the [`StreamSession`] API over N shards:
//!   `apply` fans the routed deltas across shards on `afd-parallel`
//!   scoped threads, and score reads merge the per-shard [`IncTable`]s
//!   **bit-exactly** — a `ShardedSession` and a single `StreamSession`
//!   over the same deltas return bit-identical `f64`s (pinned by
//!   proptests for N ∈ {1, 2, 3, 7}).
//!
//! Compaction verification runs per shard against that shard's slice of
//! the snapshot, exactly as the ROADMAP prescribed.

use std::collections::HashMap;
use std::time::Duration;

use afd_parallel::par_map_mut;
use afd_relation::{AttrId, AttrSet, Column, Dictionary, Fd, Relation, Schema, Value, NULL_CODE};
use afd_wire::{Decode as _, Encode as _};

use crate::backend::{InProcShard, ProcessShard, ShardBackend, WorkerCommand};
use crate::delta::{RowDelta, RowId, StreamError, TransportError};
use crate::recovery::{RecoveryConfig, RecoveryReport, ShardRecoveryStats, ShutdownReport};
use crate::session::{CompactionReport, ScoreDiff};
use crate::table::{IncTable, StreamScores};
use crate::wire::SessionSnapshot;

/// Stable 64-bit FNV-1a over a row's shard-key values. Deterministic
/// across processes (unlike `DefaultHasher` guarantees), so a persisted
/// shard layout can be re-derived.
fn key_hash(values: impl Iterator<Item = Value>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for v in values {
        match v {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                i.to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Float(f) => {
                eat(2);
                f.get()
                    .to_bits()
                    .to_le_bytes()
                    .into_iter()
                    .for_each(&mut eat);
            }
            Value::Str(s) => {
                eat(3);
                s.bytes().for_each(&mut eat);
                eat(0xff);
            }
        }
    }
    h
}

/// Hash-partitions row deltas across `n_shards` by shard-key value and
/// owns the global ⇄ per-shard row-id translation.
///
/// Global row ids follow [`StreamSession`] semantics exactly: assigned
/// densely in arrival order, tombstoned by delete, renumbered by
/// [`DeltaRouter::compact`].
#[derive(Debug, Clone)]
pub struct DeltaRouter {
    key: AttrSet,
    arity: usize,
    n_shards: usize,
    /// Global slot -> (shard, shard-local slot).
    placement: Vec<(u32, RowId)>,
    /// Global slot liveness (mirrors the shards' tombstones).
    live: Vec<bool>,
    n_live: usize,
    /// Next local slot per shard.
    shard_slots: Vec<RowId>,
}

impl DeltaRouter {
    /// A router over `n_shards` shards keyed by `key` (attribute ids must
    /// lie inside a schema of `arity` attributes).
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero shards or an out-of-schema
    /// key attribute.
    pub fn new(key: AttrSet, arity: usize, n_shards: usize) -> Result<Self, StreamError> {
        if n_shards == 0 {
            return Err(StreamError::ShardConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if let Some(&a) = key.ids().iter().find(|a| a.index() >= arity) {
            return Err(StreamError::ShardConfig(format!(
                "shard key attribute {a} outside the {arity}-attribute schema"
            )));
        }
        Ok(DeltaRouter {
            key,
            arity,
            n_shards,
            placement: Vec::new(),
            live: Vec::new(),
            n_live: 0,
            shard_slots: vec![0; n_shards],
        })
    }

    /// The routing key.
    pub fn shard_key(&self) -> &AttrSet {
        &self.key
    }

    /// Number of shards routed across.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Global slots assigned so far (tombstones included).
    pub fn n_slots(&self) -> usize {
        self.placement.len()
    }

    /// Live global rows.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// The (shard, local slot) placement of live global row `id`.
    pub fn placement_of(&self, id: RowId) -> Option<(u32, RowId)> {
        (self.live.get(id as usize) == Some(&true)).then(|| self.placement[id as usize])
    }

    /// The shard a row with these values routes to.
    pub fn shard_of_row(&self, row: &[Value]) -> usize {
        if self.n_shards == 1 {
            return 0;
        }
        let h = key_hash(self.key.ids().iter().map(|a| row[a.index()].clone()));
        (h % self.n_shards as u64) as usize
    }

    /// Splits one global delta into per-shard deltas, assigning global
    /// ids to the inserts and translating delete ids to shard-local ones.
    /// Validation happens up front — on `Err` the router is unchanged
    /// (the same atomicity contract as [`StreamSession::apply`]).
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`], exactly as the unsharded session
    /// would report them.
    pub fn route(&mut self, delta: &RowDelta) -> Result<Vec<RowDelta>, StreamError> {
        let mut seen: std::collections::HashSet<RowId> =
            std::collections::HashSet::with_capacity(delta.deletes.len());
        for &id in &delta.deletes {
            if (id as usize) >= self.placement.len() {
                return Err(StreamError::UnknownRow(id));
            }
            if !self.live[id as usize] || !seen.insert(id) {
                return Err(StreamError::AlreadyDeleted(id));
            }
        }
        for row in &delta.inserts {
            if row.len() != self.arity {
                return Err(StreamError::Arity {
                    expected: self.arity,
                    got: row.len(),
                });
            }
        }
        let mut locals = vec![RowDelta::new(); self.n_shards];
        for &id in &delta.deletes {
            let (shard, local) = self.placement[id as usize];
            self.live[id as usize] = false;
            self.n_live -= 1;
            locals[shard as usize].deletes.push(local);
        }
        for row in &delta.inserts {
            let shard = self.shard_of_row(row);
            let local = self.shard_slots[shard];
            self.shard_slots[shard] += 1;
            self.placement.push((shard as u32, local));
            self.live.push(true);
            self.n_live += 1;
            locals[shard].inserts.push(row.clone());
        }
        Ok(locals)
    }

    /// Renumbers after the shards compacted: tombstoned slots vanish and
    /// both global and shard-local ids become dense again (in arrival
    /// order, matching [`StreamSession::compact`]'s renumbering).
    pub fn compact(&mut self) {
        let mut next_local = vec![0 as RowId; self.n_shards];
        let mut placement = Vec::with_capacity(self.n_live);
        for (slot, &(shard, _)) in self.placement.iter().enumerate() {
            if self.live[slot] {
                placement.push((shard, next_local[shard as usize]));
                next_local[shard as usize] += 1;
            }
        }
        self.placement = placement;
        self.live = vec![true; self.n_live];
        self.shard_slots = next_local;
    }
}

/// Sentinel for "row already dead" entries in aliases and remaps.
const DEAD: RowId = RowId::MAX;

/// Per-shard supervision state: the checkpoint + delta log that make a
/// crashed worker recoverable, and the id-space translation that keeps
/// the router talking to a restored worker.
///
/// The router numbers a shard's local slots over the shard's **full
/// insertion history** (tombstones included). A restored worker instead
/// numbers rows densely over what recovery re-fed it (the checkpoint's
/// live rows, then the replayed log). `alias` is the bridge: router
/// local slot -> current worker row id.
#[derive(Debug, Clone)]
struct ShardSupervisor {
    /// Router local slot -> worker row id ([`DEAD`] once deleted).
    alias: Vec<RowId>,
    /// Liveness by worker row id.
    w_live: Vec<bool>,
    /// Next worker row id the current incarnation will assign.
    w_next: RowId,
    /// Framed [`SessionSnapshot`] of the live rows at the last checkpoint.
    ckpt_bytes: Vec<u8>,
    /// Worker id-space length when the checkpoint was taken.
    ckpt_w_len: RowId,
    /// Live rows in the checkpoint (a restored worker numbers them
    /// `0..ckpt_n_live` in arrival order).
    ckpt_n_live: RowId,
    /// Pre-checkpoint worker id -> restored worker id ([`DEAD`] for rows
    /// dead at checkpoint time).
    ckpt_remap: Vec<RowId>,
    /// Encoded worker-id-space [`RowDelta`] slices applied since the
    /// checkpoint, in order — the replay tail.
    log: Vec<Vec<u8>>,
    stats: ShardRecoveryStats,
}

impl ShardSupervisor {
    fn new(empty_ckpt: Vec<u8>) -> Self {
        ShardSupervisor {
            alias: Vec::new(),
            w_live: Vec::new(),
            w_next: 0,
            ckpt_bytes: empty_ckpt,
            ckpt_w_len: 0,
            ckpt_n_live: 0,
            ckpt_remap: Vec::new(),
            log: Vec::new(),
            stats: ShardRecoveryStats::default(),
        }
    }

    /// Maps a pre-recovery worker id into the restored worker's id space:
    /// checkpoint rows renumber to their live-rank, post-checkpoint rows
    /// follow densely.
    fn translate_old(&self, id: RowId) -> RowId {
        if id < self.ckpt_w_len {
            self.ckpt_remap[id as usize]
        } else {
            self.ckpt_n_live + (id - self.ckpt_w_len)
        }
    }

    /// Records a successfully applied worker-space slice: appends it to
    /// the replay log and advances the alias/liveness bookkeeping.
    fn commit(&mut self, translated: &RowDelta) {
        if !translated.is_empty() {
            self.log.push(translated.encode_to_vec());
        }
        for &d in &translated.deletes {
            self.w_live[d as usize] = false;
        }
        for _ in &translated.inserts {
            self.alias.push(self.w_next);
            self.w_live.push(true);
            self.w_next += 1;
        }
    }

    /// Installs `bytes` (a framed snapshot of the worker's current live
    /// rows) as the new checkpoint and truncates the replay log.
    fn install_checkpoint(&mut self, bytes: Vec<u8>) {
        let mut remap = vec![DEAD; self.w_next as usize];
        let mut rank: RowId = 0;
        for (id, &live) in self.w_live.iter().enumerate() {
            if live {
                remap[id] = rank;
                rank += 1;
            }
        }
        self.ckpt_bytes = bytes;
        self.ckpt_w_len = self.w_next;
        self.ckpt_n_live = rank;
        self.ckpt_remap = remap;
        self.log.clear();
    }

    /// Rewrites alias/liveness into the restored worker's id space after
    /// a successful checkpoint+replay restore.
    fn rebase(&mut self) {
        let new_len = (self.ckpt_n_live + (self.w_next - self.ckpt_w_len)) as usize;
        let mut new_live = vec![false; new_len];
        for (old, &live) in self.w_live.iter().enumerate() {
            let nid = self.translate_old(old as RowId);
            if nid != DEAD {
                new_live[nid as usize] = live;
            }
        }
        for i in 0..self.alias.len() {
            let a = self.alias[i];
            if a != DEAD {
                self.alias[i] = self.translate_old(a);
            }
        }
        self.w_live = new_live;
        self.w_next = new_len as RowId;
    }
}

/// Translates a router-local delta slice into shard `sup`'s current
/// worker id space (deletes go through the alias; inserts are verbatim).
fn to_worker_space(sup: &ShardSupervisor, local: &RowDelta) -> RowDelta {
    RowDelta {
        inserts: local.inserts.clone(),
        deletes: local
            .deletes
            .iter()
            .map(|&d| sup.alias[d as usize])
            .collect(),
    }
}

/// A checkpoint encode/decode failure, surfaced on the transport error
/// channel so it feeds the same recovery/poisoning paths as a worker
/// failure.
fn ckpt_codec_err(what: &str, shard: Option<u32>, e: &dyn std::fmt::Display) -> StreamError {
    let mut te = TransportError::decode(format!("checkpoint {what}: {e}"));
    te.shard = shard;
    StreamError::Transport(te)
}

/// The in-flight request a recovery retries after restoring a shard.
enum RetryOp<'a> {
    /// Re-apply a router-local slice (re-translated post-restore).
    Apply(&'a RowDelta),
    Subscribe(&'a Fd),
    Snapshot,
    Compact,
    /// Recompact the restored (pre-compaction) state, then snapshot —
    /// retries a failure in the post-compaction checkpoint step, where
    /// recovery necessarily lands the worker *before* its compaction.
    CompactedSnapshot,
}

/// What a successfully retried [`RetryOp`] produced.
enum RetryOut {
    Done,
    Subscribed(usize),
    Snapshot(Relation),
    Compacted(CompactionReport),
}

/// Per-candidate coordinator state: the global Y-id space shared by all
/// shards (column totals are the one aggregate that spans shards).
#[derive(Debug, Clone)]
struct ShardedCandidate {
    fd: Fd,
    /// Y value tuple -> global Y id.
    y_global: HashMap<Vec<Value>, u32>,
    /// Per shard: local Y side id -> global Y id.
    y_remap: Vec<Vec<u32>>,
    last: StreamScores,
}

/// N hash-partitioned shards behind the single-session API: same
/// `subscribe`/`apply`/`scores` surface, same row-id semantics,
/// bit-identical score reads — generic over **where the shards live**
/// ([`ShardBackend`]).
///
/// * `ShardedSession<InProcShard>` (the default) keeps every shard as a
///   [`crate::StreamSession`] in this process — the original topology.
/// * `ShardedSession<ProcessShard>` (via [`ShardedSession::spawn`])
///   drives one `afd shard-worker` child process per shard over the
///   checksummed `afd-wire` stdin/stdout protocol: the coordinator
///   routes encoded delta slices out, decodes each worker's refreshed
///   [`IncTable`] state back, and merges through the existing
///   [`IncTable::merge`] — **bit-identical** to the in-process path
///   (every maintained aggregate is an integer; the codec is exact).
///
/// `apply` routes the delta ([`DeltaRouter`]), fans the per-shard slices
/// across `afd-parallel` scoped threads, then refreshes each candidate's
/// merged scores. Because each shard's apply only touches its own
/// O(delta-slice) state, the *work per shard* shrinks roughly 1/N — the
/// quantity `record_shard` benchmarks (`record_wire` additionally
/// records the process-backend transport overhead).
#[derive(Debug, Clone)]
pub struct ShardedSession<B: ShardBackend = InProcShard> {
    schema: Schema,
    shards: Vec<B>,
    router: DeltaRouter,
    candidates: Vec<ShardedCandidate>,
    threads: usize,
    deltas_applied: u64,
    compact_every: Option<u64>,
    /// Recovery knobs (checkpoint cadence, retry budget, deadlines).
    recovery: RecoveryConfig,
    /// One supervisor per shard when every backend
    /// [`ShardBackend::supports_recovery`] — `None` means transport
    /// failures poison immediately (the pre-recovery behaviour, still
    /// the fate of non-respawnable backends).
    supervisors: Option<Vec<ShardSupervisor>>,
    /// Why the session refuses further mutation, when it does: a shard
    /// failed and could not be recovered (retry budget exhausted, or a
    /// non-recoverable backend).
    ///
    /// Score reads keep serving the last consistent (pre-failure) state;
    /// `apply`/`compact` return [`StreamError::Poisoned`] instead of
    /// corrupting rows.
    poisoned: Option<String>,
}

impl ShardedSession<InProcShard> {
    /// An empty in-process sharded session over `schema`, routing on
    /// `shard_key`.
    ///
    /// With `n_shards == 1` the key is irrelevant (everything lands in
    /// shard 0) and any FD may subscribe; with more shards every
    /// subscribed FD's LHS must contain the key.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero shards or an out-of-schema
    /// key attribute.
    pub fn new(schema: Schema, shard_key: AttrSet, n_shards: usize) -> Result<Self, StreamError> {
        let shards = (0..n_shards)
            .map(|_| InProcShard::new(schema.clone()))
            .collect();
        Self::with_backends(schema, shard_key, shards)
    }

    /// An in-process sharded session whose rows start as `rel` (all
    /// live), routed to their shards in row order.
    ///
    /// # Errors
    /// As [`ShardedSession::new`].
    pub fn from_relation(
        rel: Relation,
        shard_key: AttrSet,
        n_shards: usize,
    ) -> Result<Self, StreamError> {
        Self::new(rel.schema().clone(), shard_key, n_shards)?.seeded(&rel)
    }
}

impl ShardedSession<ProcessShard> {
    /// An empty **process-backed** sharded session: spawns one
    /// `afd shard-worker` child per shard via `worker` and initialises
    /// each over the wire.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero workers or an out-of-schema
    /// key attribute; [`StreamError::Transport`] when a worker cannot be
    /// spawned or fails its Init handshake.
    pub fn spawn(
        schema: Schema,
        shard_key: AttrSet,
        n_shards: usize,
        worker: &WorkerCommand,
    ) -> Result<Self, StreamError> {
        if n_shards == 0 {
            return Err(StreamError::ShardConfig(
                "worker count must be at least 1".into(),
            ));
        }
        let shards = (0..n_shards)
            .map(|_| ProcessShard::spawn(worker, &schema))
            .collect::<Result<Vec<_>, _>>()?;
        Self::with_backends(schema, shard_key, shards)
    }

    /// As [`ShardedSession::spawn`], seeding the workers with `rel`'s
    /// rows (routed, in row order).
    ///
    /// # Errors
    /// As [`ShardedSession::spawn`].
    pub fn spawn_from_relation(
        rel: Relation,
        shard_key: AttrSet,
        n_shards: usize,
        worker: &WorkerCommand,
    ) -> Result<Self, StreamError> {
        Self::spawn(rel.schema().clone(), shard_key, n_shards, worker)?.seeded(&rel)
    }
}

impl<B: ShardBackend> ShardedSession<B> {
    /// A sharded session over caller-built backends (one per shard).
    /// This is the plug point: `AfdEngine` hands in
    /// [`crate::AnyShard`]s picked by configuration.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] for zero backends or an
    /// out-of-schema key attribute.
    pub fn with_backends(
        schema: Schema,
        shard_key: AttrSet,
        mut shards: Vec<B>,
    ) -> Result<Self, StreamError> {
        let router = DeltaRouter::new(shard_key, schema.arity(), shards.len())?;
        let recovery = RecoveryConfig::default();
        let deadline = Duration::from_millis(recovery.request_timeout_ms);
        for (i, shard) in shards.iter_mut().enumerate() {
            shard.configure(i as u32, deadline);
        }
        let supervisors = if shards.iter().all(ShardBackend::supports_recovery) {
            let empty = SessionSnapshot {
                rows: Relation::empty(schema.clone()),
                shard_key: router.shard_key().clone(),
                n_shards: shards.len() as u32,
                subscriptions: Vec::new(),
                compact_every: None,
            }
            .to_bytes()
            .map_err(|e| ckpt_codec_err("encode", None, &e))?;
            Some(
                shards
                    .iter()
                    .map(|_| ShardSupervisor::new(empty.clone()))
                    .collect(),
            )
        } else {
            None
        };
        Ok(ShardedSession {
            schema,
            shards,
            router,
            candidates: Vec::new(),
            threads: 1,
            deltas_applied: 0,
            compact_every: None,
            recovery,
            supervisors,
            poisoned: None,
        })
    }

    /// Routes and applies `rel`'s rows as the starting population
    /// (counters reset, so the seed does not count as an applied delta).
    ///
    /// # Errors
    /// [`StreamError::Transport`] when a worker backend fails the seed
    /// apply; [`StreamError::Arity`] when `rel` disagrees with the
    /// session schema.
    pub fn seeded(mut self, rel: &Relation) -> Result<Self, StreamError> {
        let seed = RowDelta::insert_only((0..rel.n_rows()).map(|r| rel.row(r)));
        self.apply(&seed)?;
        self.deltas_applied = 0;
        // Fold the seed into the checkpoints so recovery never replays it
        // as a log entry.
        if self.supervisors.is_some() {
            self.refresh_checkpoints()?;
        }
        Ok(self)
    }

    /// Replaces the recovery configuration (checkpoint cadence, retry
    /// budget, backoff, request deadline) and pushes the new deadline to
    /// every shard backend.
    ///
    /// # Errors
    /// [`StreamError::ShardConfig`] when `cfg` fails
    /// [`RecoveryConfig::validate`].
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Result<Self, StreamError> {
        cfg.validate()?;
        let deadline = Duration::from_millis(cfg.request_timeout_ms);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.configure(i as u32, deadline);
        }
        self.recovery = cfg;
        Ok(self)
    }

    /// Whether transport failures are recovered (respawn + checkpoint +
    /// replay) rather than poisoning immediately — true iff every
    /// backend [`ShardBackend::supports_recovery`].
    pub fn recovery_enabled(&self) -> bool {
        self.supervisors.is_some()
    }

    /// Per-shard recovery counters (all zero for non-recoverable
    /// backends, or when nothing ever failed).
    pub fn recovery_report(&self) -> RecoveryReport {
        RecoveryReport {
            shards: match &self.supervisors {
                Some(sups) => sups.iter().map(|s| s.stats).collect(),
                None => vec![ShardRecoveryStats::default(); self.shards.len()],
            },
        }
    }

    /// Gracefully shuts every shard down (workers get a Shutdown request
    /// and a bounded exit wait), reporting the shards that would not die
    /// cleanly. Stragglers are still force-killed when the session drops.
    pub fn shutdown(mut self) -> ShutdownReport {
        let mut stragglers = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if shard.shutdown().is_err() {
                stragglers.push(i as u32);
            }
        }
        ShutdownReport {
            shards: self.shards.len(),
            stragglers,
        }
    }

    /// Fans per-shard applies over up to `threads` scoped workers
    /// (default 1: inline, deterministic either way).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables automatic (per-shard verified) compaction after every
    /// `every` applied deltas.
    #[must_use]
    pub fn with_compaction_every(mut self, every: u64) -> Self {
        self.compact_every = Some(every.max(1));
        self
    }

    /// The schema every shard serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing layer (shard key, placements, live counts).
    pub fn router(&self) -> &DeltaRouter {
        &self.router
    }

    /// Live rows across all shards.
    ///
    /// Diagnostic counter: on a **poisoned** session this reflects the
    /// router's view, which may include a partially-fanned-out delta —
    /// only [`ShardedSession::scores`] is guaranteed to serve the last
    /// consistent state there ([`ShardedSession::snapshot`] and
    /// [`ShardedSession::merged_table`] refuse with typed errors).
    pub fn n_live(&self) -> usize {
        self.router.n_live()
    }

    /// Live rows per shard — how even the hash partitioning came out.
    /// Diagnostic, with the same poisoned-session caveat as
    /// [`ShardedSession::n_live`].
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(ShardBackend::n_live).collect()
    }

    /// Number of tracked candidates.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The FD of candidate `cid`.
    pub fn fd(&self, cid: usize) -> &Fd {
        &self.candidates[cid].fd
    }

    /// Direct access to one shard's backend — the fault-injection hook
    /// (tests kill a [`ProcessShard`] here to exercise the transport
    /// error paths).
    pub fn backend_mut(&mut self, shard: usize) -> &mut B {
        &mut self.shards[shard]
    }

    fn check_poisoned(&self) -> Result<(), StreamError> {
        match &self.poisoned {
            Some(why) => Err(StreamError::Poisoned(why.clone())),
            None => Ok(()),
        }
    }

    /// Subscribes a candidate FD on every shard and returns its candidate
    /// index (re-subscribing returns the existing index).
    ///
    /// # Errors
    /// [`StreamError::UnknownAttr`] for out-of-schema attributes;
    /// [`StreamError::ShardConfig`] when `n_shards > 1` and the FD's LHS
    /// does not contain the shard key (its X-groups would straddle
    /// shards); [`StreamError::Transport`] when a worker backend fails.
    pub fn subscribe(&mut self, fd: Fd) -> Result<usize, StreamError> {
        if let Some(i) = self.candidates.iter().position(|c| c.fd == fd) {
            return Ok(i);
        }
        self.check_poisoned()?;
        // Coordinator-side validation, uniform across backends.
        for &a in fd.lhs().ids().iter().chain(fd.rhs().ids()) {
            if a.index() >= self.schema.arity() {
                return Err(StreamError::UnknownAttr(a.0));
            }
        }
        if self.shards.len() > 1 && !self.router.shard_key().is_subset(fd.lhs()) {
            return Err(StreamError::ShardConfig(format!(
                "candidate LHS {:?} does not contain the shard key {:?}",
                fd.lhs().ids(),
                self.router.shard_key().ids()
            )));
        }
        for i in 0..self.shards.len() {
            match self.shards[i].subscribe(&fd) {
                Ok(cid) => debug_assert_eq!(cid, self.candidates.len(), "lockstep subscribes"),
                Err(StreamError::Transport(te)) if self.supervisors.is_some() => {
                    // Recovery re-subscribes the existing candidates, then
                    // the retry subscribes the new FD — lockstep restored.
                    match self.recover_and_retry(i, RetryOp::Subscribe(&fd), te) {
                        Ok(RetryOut::Subscribed(cid)) => {
                            debug_assert_eq!(cid, self.candidates.len(), "lockstep subscribes");
                        }
                        Ok(_) => unreachable!("subscribe retry yields a subscription"),
                        Err(e) => {
                            self.poisoned = Some(format!(
                                "subscribe fan-out failed on shard {i} after recovery attempts: {e}"
                            ));
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    // Validation passed above, so this is a backend (i.e.
                    // transport) failure; earlier shards may already have
                    // subscribed — refuse further mutation.
                    self.poisoned = Some(format!("subscribe fan-out failed on shard {i}: {e}"));
                    return Err(e);
                }
            }
        }
        self.candidates.push(ShardedCandidate {
            fd,
            y_global: HashMap::new(),
            y_remap: vec![Vec::new(); self.shards.len()],
            last: StreamScores::exact(),
        });
        let cid = self.candidates.len() - 1;
        self.sync_candidate(cid);
        self.candidates[cid].last = self.merged_scores(cid);
        Ok(cid)
    }

    /// The merged score read: a single shard's table is read directly
    /// (merging one part is a score-level identity); N > 1 sums the
    /// per-shard score aggregates via [`IncTable::merged_scores`]
    /// (O(histograms + column totals) — the merged group/cell maps are
    /// never materialised on this path).
    fn merged_scores(&self, cid: usize) -> StreamScores {
        if self.shards.len() == 1 {
            self.shards[0].table(cid).scores()
        } else {
            let cand = &self.candidates[cid];
            IncTable::merged_scores(
                self.shards
                    .iter()
                    .enumerate()
                    .map(|(s, shard)| (shard.table(cid), cand.y_remap[s].as_slice())),
            )
        }
    }

    /// Extends candidate `cid`'s per-shard Y remaps with any side ids the
    /// shards assigned since the last sync. Global ids are handed out in
    /// (shard, local-id) scan order — deterministic, and irrelevant to
    /// scores (histogram reductions never see Y identity).
    fn sync_candidate(&mut self, cid: usize) {
        let cand = &mut self.candidates[cid];
        for (s, shard) in self.shards.iter().enumerate() {
            let known = cand.y_remap[s].len();
            for id in known..shard.n_y_side_ids(cid) {
                let key = shard.y_side_values(cid, id as u32);
                let next = cand.y_global.len() as u32;
                let g = *cand.y_global.entry(key).or_insert(next);
                cand.y_remap[s].push(g);
            }
        }
    }

    /// Merges candidate `cid`'s per-shard tables into one [`IncTable`]
    /// over the whole relation (O(aggregate state), not O(rows)).
    ///
    /// # Errors
    /// [`StreamError::Transport`] on a poisoned session: after a
    /// mid-fan-out failure the shard tables and the coordinator's Y
    /// remaps may disagree, so a merge could panic or lie — only the
    /// cached [`ShardedSession::scores`] stay served.
    pub fn merged_table(&self, cid: usize) -> Result<IncTable, StreamError> {
        self.check_poisoned()?;
        let cand = &self.candidates[cid];
        Ok(IncTable::merge(self.shards.iter().enumerate().map(
            |(s, shard)| (shard.table(cid), cand.y_remap[s].as_slice()),
        )))
    }

    /// The current merged scores of candidate `cid` — bit-identical to a
    /// single [`crate::StreamSession`] over the same delta history.
    pub fn scores(&self, cid: usize) -> StreamScores {
        self.candidates[cid].last
    }

    /// Applies one global delta: routes it, fans the per-shard slices
    /// across the shards in parallel, and reports one merged
    /// [`ScoreDiff`] per candidate.
    ///
    /// Validation happens in the router before anything mutates, so a
    /// validation `Err` leaves the session unchanged (same contract and
    /// same error values as the unsharded session). A **backend**
    /// failure mid-fan-out (a killed worker, a corrupt frame, a request
    /// past its deadline) enters recovery on recoverable backends — the
    /// dead shard is respawned, its checkpoint restored, the delta log
    /// replayed and the in-flight slice retried; only a shard that stays
    /// down past [`RecoveryConfig::retry_budget`] (or a non-recoverable
    /// backend) poisons the session, after which score reads keep
    /// serving the pre-delta state and every further mutation is refused
    /// with [`StreamError::Poisoned`].
    ///
    /// # Errors
    /// [`StreamError::Arity`] / [`StreamError::UnknownRow`] /
    /// [`StreamError::AlreadyDeleted`] on invalid deltas,
    /// [`StreamError::Transport`] on unrecovered backend failure, and
    /// [`StreamError::Diverged`] if due auto-compaction finds a
    /// shard diverging from its batch rebuild.
    pub fn apply(&mut self, delta: &RowDelta) -> Result<Vec<ScoreDiff>, StreamError> {
        self.check_poisoned()?;
        let locals = self.router.route(delta)?;
        // Supervised sessions speak to workers in worker-id space; the
        // translated slices are also what the replay log records.
        let translated: Option<Vec<RowDelta>> = self.supervisors.as_ref().map(|sups| {
            locals
                .iter()
                .enumerate()
                .map(|(s, local)| to_worker_space(&sups[s], local))
                .collect()
        });
        let slices: &[RowDelta] = translated.as_deref().unwrap_or(&locals);
        let results = par_map_mut(&mut self.shards, self.threads, |s, shard| {
            shard.apply(&slices[s])
        });
        for (s, result) in results.into_iter().enumerate() {
            match result {
                Ok(()) => {
                    if let Some(sups) = &mut self.supervisors {
                        sups[s].commit(&slices[s]);
                    }
                }
                Err(StreamError::Transport(te)) if self.supervisors.is_some() => {
                    if let Err(e) = self.recover_and_retry(s, RetryOp::Apply(&locals[s]), te) {
                        self.poisoned = Some(format!(
                            "delta fan-out failed on shard {s} after recovery attempts: {e}"
                        ));
                        return Err(e);
                    }
                }
                Err(err) => {
                    // The router already re-placed the delta and some
                    // shards may have absorbed their slice — the
                    // coordinator's candidate scores still reflect the
                    // pre-delta state, so reads stay consistent; mutation
                    // is refused from here on.
                    self.poisoned = Some(format!("delta fan-out failed: {err}"));
                    return Err(err);
                }
            }
        }
        let diffs = (0..self.candidates.len())
            .map(|cid| {
                self.sync_candidate(cid);
                let after = self.merged_scores(cid);
                let diff = ScoreDiff {
                    candidate: cid,
                    before: self.candidates[cid].last,
                    after,
                };
                self.candidates[cid].last = after;
                diff
            })
            .collect();
        self.deltas_applied += 1;
        if self.supervisors.is_some()
            && self
                .deltas_applied
                .is_multiple_of(self.recovery.checkpoint_every)
        {
            self.refresh_checkpoints()?;
        }
        if let Some(every) = self.compact_every {
            if self.deltas_applied.is_multiple_of(every) {
                self.compact()?;
            }
        }
        Ok(diffs)
    }

    /// Takes a fresh per-shard checkpoint (framed snapshot of the live
    /// rows) and truncates the replay logs — the every-K-applies step
    /// bounding how much a recovery has to replay. Only called on
    /// supervised sessions.
    fn refresh_checkpoints(&mut self) -> Result<(), StreamError> {
        for s in 0..self.shards.len() {
            let rel = match self.shards[s].snapshot() {
                Ok(rel) => rel,
                Err(StreamError::Transport(te)) => {
                    match self.recover_and_retry(s, RetryOp::Snapshot, te) {
                        Ok(RetryOut::Snapshot(rel)) => rel,
                        Ok(_) => unreachable!("snapshot retry yields a snapshot"),
                        Err(e) => {
                            self.poisoned = Some(format!(
                                "checkpoint refresh failed on shard {s} after recovery \
                                 attempts: {e}"
                            ));
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    self.poisoned = Some(format!("checkpoint refresh failed on shard {s}: {e}"));
                    return Err(e);
                }
            };
            let bytes = match self.encode_ckpt(rel, s) {
                Ok(bytes) => bytes,
                Err(e) => {
                    self.poisoned = Some(format!("checkpoint refresh failed on shard {s}: {e}"));
                    return Err(e);
                }
            };
            self.supervisors.as_mut().expect("supervised")[s].install_checkpoint(bytes);
        }
        Ok(())
    }

    /// Frames `rel` as the shard's checkpoint [`SessionSnapshot`].
    fn encode_ckpt(&self, rel: Relation, shard: usize) -> Result<Vec<u8>, StreamError> {
        SessionSnapshot {
            rows: rel,
            shard_key: self.router.shard_key().clone(),
            n_shards: self.shards.len() as u32,
            subscriptions: self.candidates.iter().map(|c| c.fd.clone()).collect(),
            compact_every: self.compact_every,
        }
        .to_bytes()
        .map_err(|e| ckpt_codec_err("encode", Some(shard as u32), &e))
    }

    /// Runs the full recovery loop for shard `s` after a transport
    /// failure: backoff, respawn, restore (re-subscribe, checkpoint
    /// seed, log replay), then retry the in-flight `op`. Every step may
    /// fail again; the loop spends at most
    /// [`RecoveryConfig::retry_budget`] attempts before giving up with
    /// the last error (the caller poisons). A successful recovery
    /// rebuilds the global Y space — a restored worker's side-id
    /// numbering can differ (scores never observe Y identity, so merged
    /// reads stay bit-identical).
    fn recover_and_retry(
        &mut self,
        s: usize,
        op: RetryOp<'_>,
        first: TransportError,
    ) -> Result<RetryOut, StreamError> {
        let budget = self.recovery.retry_budget;
        let base = self.recovery.backoff_ms;
        let mut last_err = StreamError::Transport(first);
        for attempt in 0..budget {
            if base > 0 {
                let shift = attempt.min(6);
                std::thread::sleep(Duration::from_millis(base.saturating_mul(1 << shift)));
            }
            if let Err(e) = self.try_recover(s) {
                last_err = e;
                continue;
            }
            match self.run_op(s, &op) {
                Ok(out) => {
                    self.rebuild_y_space();
                    return Ok(out);
                }
                Err(StreamError::Transport(te)) => last_err = StreamError::Transport(te),
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// One restore attempt for shard `s`: respawn a fresh worker,
    /// re-subscribe the current candidates, seed the checkpoint rows,
    /// replay the post-checkpoint log (translated into the restored id
    /// space) and take a fresh checkpoint. All fallible steps run before
    /// any supervisor bookkeeping mutates, so a failed attempt leaves
    /// the checkpoint/alias state consistent for the next try (only the
    /// respawn/replay counters advance).
    fn try_recover(&mut self, s: usize) -> Result<(), StreamError> {
        self.shards[s].respawn()?;
        self.supervisors.as_mut().expect("supervised")[s]
            .stats
            .respawns += 1;
        let fds: Vec<Fd> = self.candidates.iter().map(|c| c.fd.clone()).collect();
        for fd in &fds {
            self.shards[s].subscribe(fd)?;
        }
        let (ckpt_rows, log) = {
            let sup = &self.supervisors.as_ref().expect("supervised")[s];
            let snap = SessionSnapshot::from_bytes(&sup.ckpt_bytes)
                .map_err(|e| ckpt_codec_err("decode", Some(s as u32), &e))?;
            (snap.rows, sup.log.clone())
        };
        if ckpt_rows.n_rows() > 0 {
            let seed = RowDelta::insert_only((0..ckpt_rows.n_rows()).map(|r| ckpt_rows.row(r)));
            self.shards[s].apply(&seed)?;
        }
        let mut replayed = 0u64;
        for entry in &log {
            let delta = RowDelta::decode_exact(entry)
                .map_err(|e| ckpt_codec_err("log replay decode", Some(s as u32), &e))?;
            let translated = {
                let sup = &self.supervisors.as_ref().expect("supervised")[s];
                RowDelta {
                    deletes: delta
                        .deletes
                        .iter()
                        .map(|&d| sup.translate_old(d))
                        .collect(),
                    inserts: delta.inserts,
                }
            };
            self.shards[s].apply(&translated)?;
            replayed += 1;
        }
        let rel = self.shards[s].snapshot()?;
        let n_live_now = self.shards[s].n_live();
        let bytes = self.encode_ckpt(rel, s)?;
        // Commit: every fallible step is behind us — move the supervisor
        // into the restored id space and install the fresh checkpoint.
        let sup = &mut self.supervisors.as_mut().expect("supervised")[s];
        sup.stats.deltas_replayed += replayed;
        sup.rebase();
        sup.install_checkpoint(bytes);
        debug_assert_eq!(sup.ckpt_n_live as usize, n_live_now);
        Ok(())
    }

    /// Re-runs the request a recovery interrupted, against the restored
    /// shard.
    fn run_op(&mut self, s: usize, op: &RetryOp<'_>) -> Result<RetryOut, StreamError> {
        match op {
            RetryOp::Apply(local) => {
                let slice = {
                    let sups = self.supervisors.as_ref().expect("supervised");
                    to_worker_space(&sups[s], local)
                };
                self.shards[s].apply(&slice)?;
                self.supervisors.as_mut().expect("supervised")[s].commit(&slice);
                Ok(RetryOut::Done)
            }
            RetryOp::Subscribe(fd) => Ok(RetryOut::Subscribed(self.shards[s].subscribe(fd)?)),
            RetryOp::Snapshot => Ok(RetryOut::Snapshot(self.shards[s].snapshot()?)),
            RetryOp::Compact => Ok(RetryOut::Compacted(self.shards[s].compact()?)),
            RetryOp::CompactedSnapshot => {
                // Worker-side compaction renumbers live rows in arrival
                // order — deterministic, so recompacting the restored
                // state reproduces the incarnation that died.
                self.shards[s].compact()?;
                Ok(RetryOut::Snapshot(self.shards[s].snapshot()?))
            }
        }
    }

    /// Rebuilds the global Y-id space of every candidate from the shards'
    /// current side-id dictionaries. Needed whenever a shard's numbering
    /// may have changed wholesale (post-recovery, post-compaction);
    /// correct at any time because scores never observe Y identity.
    fn rebuild_y_space(&mut self) {
        let n_shards = self.shards.len();
        for cid in 0..self.candidates.len() {
            let cand = &mut self.candidates[cid];
            cand.y_global.clear();
            cand.y_remap = vec![Vec::new(); n_shards];
            self.sync_candidate(cid);
        }
    }

    /// Materialises the live rows in global row order as one compact
    /// [`Relation`] — row-equivalent to the snapshot of an unsharded
    /// session over the same history.
    ///
    /// This is a **code-level merge** (the ROADMAP-flagged fix): each
    /// shard ships its snapshot columns once, per-column dictionaries
    /// are unified by interning each shard's *distinct* values
    /// (O(Σ dictionary sizes) `Value` handling in total), and every row
    /// is then one remapped `u32` code copy per column — O(rows) code
    /// copies like [`Relation::filter_rows`], not O(rows · arity)
    /// `Value` round-trips. Dictionary code numbering may differ from an
    /// unsharded session's (grouping kernels remap densely and never
    /// observe it); rows and their order are identical.
    ///
    /// # Errors
    /// [`StreamError::Transport`] when a worker's snapshot request
    /// fails — or when the session is poisoned (the router's placements
    /// are ahead of the shard contents, so a merged snapshot would be
    /// inconsistent with the served scores).
    pub fn snapshot(&mut self) -> Result<Relation, StreamError> {
        self.check_poisoned()?;
        let mut locals = Vec::with_capacity(self.shards.len());
        for s in 0..self.shards.len() {
            let rel = match self.shards[s].snapshot() {
                Ok(rel) => rel,
                Err(StreamError::Transport(te)) if self.supervisors.is_some() => {
                    match self.recover_and_retry(s, RetryOp::Snapshot, te) {
                        Ok(RetryOut::Snapshot(rel)) => rel,
                        Ok(_) => unreachable!("snapshot retry yields a snapshot"),
                        Err(e) => {
                            // A half-restored worker no longer matches the
                            // router's placements.
                            self.poisoned = Some(format!(
                                "snapshot fan-out failed on shard {s} after recovery \
                                 attempts: {e}"
                            ));
                            return Err(e);
                        }
                    }
                }
                Err(e) => return Err(e),
            };
            locals.push(rel);
        }
        let arity = self.schema.arity();
        let mut codes: Vec<Vec<u32>> = (0..arity)
            .map(|_| Vec::with_capacity(self.router.n_live()))
            .collect();
        let mut dicts: Vec<Dictionary> = (0..arity).map(|_| Dictionary::new()).collect();
        // Per shard, per column: local dictionary code -> merged code.
        let mut remaps: Vec<Vec<Vec<u32>>> = Vec::with_capacity(locals.len());
        for snap in &locals {
            let mut per_col = Vec::with_capacity(arity);
            for (c, dict) in dicts.iter_mut().enumerate() {
                let col = snap.column(AttrId(c as u32));
                per_col.push(
                    col.dict()
                        .iter()
                        .map(|(_, v)| dict.intern(v.clone()))
                        .collect::<Vec<u32>>(),
                );
            }
            remaps.push(per_col);
        }
        // Live rows of a shard appear in its snapshot in arrival order,
        // which is also their relative global order — so a per-shard
        // cursor walks each snapshot exactly once.
        let mut cursors = vec![0usize; self.shards.len()];
        for slot in 0..self.router.n_slots() {
            if let Some((shard, _)) = self.router.placement_of(slot as RowId) {
                let s = shard as usize;
                let r = cursors[s];
                cursors[s] += 1;
                for (c, out) in codes.iter_mut().enumerate() {
                    let code = locals[s].column(AttrId(c as u32)).codes()[r];
                    out.push(if code == NULL_CODE {
                        NULL_CODE
                    } else {
                        remaps[s][c][code as usize]
                    });
                }
            }
        }
        let columns = codes
            .into_iter()
            .zip(dicts)
            .map(|(codes, dict)| Column::from_parts(codes, dict))
            .collect();
        Relation::from_columns(self.schema.clone(), columns)
            .map_err(|e| StreamError::Relation(e.to_string()))
    }

    /// Compacts every shard — each shard verifies its incremental PLIs,
    /// contingency tables and scores against a batch rebuild of **its
    /// slice of the snapshot** — then renumbers the global ids and
    /// rebuilds the Y-id coordination state.
    ///
    /// # Errors
    /// [`StreamError::Diverged`] if any shard's incremental state
    /// disagrees with its batch rebuild (that shard is left unswapped for
    /// post-mortem), [`StreamError::Transport`] on unrecovered worker
    /// failure. A worker that dies anywhere in the compaction flow is
    /// restored to its pre-compaction state (checkpoint + log replay),
    /// recompacted if needed, and the interrupted step retried; only an
    /// exhausted retry budget **poisons** the session (score reads keep
    /// working; every further `apply`/`compact` is refused).
    pub fn compact(&mut self) -> Result<CompactionReport, StreamError> {
        self.check_poisoned()?;
        let before: Vec<StreamScores> = (0..self.candidates.len())
            .map(|cid| self.candidates[cid].last)
            .collect();
        let mut rows_dropped = 0;
        let mut n_live = 0;
        for i in 0..self.shards.len() {
            let report = match self.shards[i].compact() {
                Ok(report) => report,
                Err(StreamError::Transport(te)) if self.supervisors.is_some() => {
                    match self.recover_and_retry(i, RetryOp::Compact, te) {
                        Ok(RetryOut::Compacted(report)) => report,
                        Ok(_) => unreachable!("compact retry yields a report"),
                        Err(e) => {
                            self.poisoned = Some(format!(
                                "compaction fan-out failed on shard {i} after recovery \
                                 attempts: {e}"
                            ));
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    // Shards 0..i already renumbered their local ids but
                    // the router still holds the old placements. A
                    // transport failure is unrecoverable regardless of
                    // position (the worker may or may not have compacted).
                    if i > 0 || matches!(e, StreamError::Transport(_)) {
                        self.poisoned =
                            Some(format!("compaction fan-out failed on shard {i}: {e}"));
                    }
                    return Err(e);
                }
            };
            rows_dropped += report.rows_dropped;
            n_live += report.n_live;
        }
        self.router.compact();
        // Shard compaction reset the side-id dictionaries: rebuild the
        // global Y space from scratch.
        self.rebuild_y_space();
        for (cid, before) in before.iter().enumerate() {
            debug_assert!(
                self.merged_scores(cid).bits_eq(before),
                "compaction must not move merged scores"
            );
        }
        // Every shard renumbered densely: reset the supervisors' aliasing
        // to identity and install fresh checkpoints. The supervisor still
        // holds the *pre*-compaction checkpoint here, so a failure is
        // recovered by restoring that state and recompacting before the
        // snapshot is retried ([`RetryOp::CompactedSnapshot`]).
        if self.supervisors.is_some() {
            for s in 0..self.shards.len() {
                let rel = match self.shards[s].snapshot() {
                    Ok(rel) => rel,
                    Err(StreamError::Transport(te)) => {
                        match self.recover_and_retry(s, RetryOp::CompactedSnapshot, te) {
                            Ok(RetryOut::Snapshot(rel)) => rel,
                            Ok(_) => unreachable!("compacted-snapshot retry yields a snapshot"),
                            Err(e) => {
                                self.poisoned = Some(format!(
                                    "post-compaction checkpoint failed on shard {s} after \
                                     recovery attempts: {e}"
                                ));
                                return Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        self.poisoned = Some(format!(
                            "post-compaction checkpoint failed on shard {s}: {e}"
                        ));
                        return Err(e);
                    }
                };
                let n = rel.n_rows() as RowId;
                let bytes = match self.encode_ckpt(rel, s) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        self.poisoned = Some(format!(
                            "post-compaction checkpoint failed on shard {s}: {e}"
                        ));
                        return Err(e);
                    }
                };
                let sup = &mut self.supervisors.as_mut().expect("supervised")[s];
                sup.alias = (0..n).collect();
                sup.w_live = vec![true; n as usize];
                sup.w_next = n;
                sup.install_checkpoint(bytes);
            }
        }
        Ok(CompactionReport {
            rows_dropped,
            candidates_checked: self.candidates.len(),
            n_live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::StreamSession;

    fn schema3() -> Schema {
        Schema::new(["A", "B", "C"]).unwrap()
    }

    fn row(a: i64, b: i64, c: i64) -> Vec<Value> {
        vec![Value::Int(a), Value::Int(b), Value::Int(c)]
    }

    fn fixture_rows() -> Vec<Vec<Value>> {
        (0..40)
            .map(|i| row(i % 7, (i % 7) * 2 + i64::from(i == 13), i % 3))
            .collect()
    }

    fn sharded(n: usize) -> ShardedSession {
        ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), n).unwrap()
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), 0),
            Err(StreamError::ShardConfig(_))
        ));
    }

    #[test]
    fn out_of_schema_shard_key_rejected() {
        assert!(matches!(
            ShardedSession::new(schema3(), AttrSet::single(AttrId(9)), 2),
            Err(StreamError::ShardConfig(_))
        ));
    }

    #[test]
    fn lhs_must_contain_shard_key_when_sharded() {
        let mut s = sharded(3);
        assert!(matches!(
            s.subscribe(Fd::linear(AttrId(1), AttrId(2))),
            Err(StreamError::ShardConfig(_))
        ));
        // Single-shard sessions accept any candidate.
        let mut s1 = sharded(1);
        assert!(s1.subscribe(Fd::linear(AttrId(1), AttrId(2))).is_ok());
    }

    #[test]
    fn sharded_matches_single_session_bit_exactly() {
        for n in [1, 2, 3] {
            let mut sharded = sharded(n);
            let mut single = StreamSession::new(schema3());
            let cid_s = sharded.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
            let cid_1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
            sharded
                .apply(&RowDelta::insert_only(fixture_rows()))
                .unwrap();
            single
                .apply(&RowDelta::insert_only(fixture_rows()))
                .unwrap();
            assert!(
                sharded.scores(cid_s).bits_eq(&single.scores(cid_1)),
                "n={n}"
            );
            // Deletes by the same global ids move both identically.
            let d = RowDelta::delete_only([13, 0, 7]);
            let diff_s = sharded.apply(&d).unwrap();
            let diff_1 = single.apply(&d).unwrap();
            assert!(diff_s[0].after.bits_eq(&diff_1[0].after), "n={n}");
            assert_eq!(sharded.n_live(), single.relation().n_live());
        }
    }

    #[test]
    fn routing_is_total_and_size_preserving() {
        let mut s = sharded(4);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        assert_eq!(s.shard_sizes().iter().sum::<usize>(), 40);
        assert_eq!(s.n_live(), 40);
        // 7 distinct keys over 4 shards: no shard can hold all rows.
        assert!(s.shard_sizes().iter().all(|&sz| sz < 40));
    }

    #[test]
    fn invalid_deltas_leave_sharded_session_untouched() {
        let mut s = sharded(2);
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        let before = s.scores(cid);
        assert_eq!(
            s.apply(&RowDelta::delete_only([999])),
            Err(StreamError::UnknownRow(999))
        );
        assert_eq!(
            s.apply(&RowDelta::delete_only([3, 3])),
            Err(StreamError::AlreadyDeleted(3))
        );
        let bad = RowDelta {
            inserts: vec![vec![Value::Int(1)]],
            deletes: vec![1],
        };
        assert!(matches!(s.apply(&bad), Err(StreamError::Arity { .. })));
        assert_eq!(s.n_live(), 40);
        assert!(s.scores(cid).bits_eq(&before));
    }

    #[test]
    fn snapshot_preserves_global_row_order() {
        let mut s = sharded(3);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([5, 20])).unwrap();
        let snap = s.snapshot().expect("in-process snapshot");
        let want: Vec<Vec<Value>> = fixture_rows()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 5 && *i != 20)
            .map(|(_, r)| r)
            .collect();
        assert_eq!(snap.n_rows(), want.len());
        for (i, row) in want.iter().enumerate() {
            assert_eq!(&snap.row(i), row);
        }
    }

    #[test]
    fn compaction_verifies_per_shard_and_keeps_scores() {
        let mut s = sharded(3);
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([2, 3, 13])).unwrap();
        let before = s.scores(cid);
        let report = s.compact().unwrap();
        assert_eq!(report.rows_dropped, 3);
        assert_eq!(report.n_live, 37);
        assert_eq!(report.candidates_checked, 1);
        assert!(s.scores(cid).bits_eq(&before));
        // Global ids renumbered densely: 0..37 deletable again.
        s.apply(&RowDelta::delete_only([36])).unwrap();
        assert_eq!(s.n_live(), 36);
        assert_eq!(
            s.apply(&RowDelta::delete_only([37])),
            Err(StreamError::UnknownRow(37))
        );
    }

    #[test]
    fn auto_compaction_runs_on_schedule() {
        let mut s = ShardedSession::new(schema3(), AttrSet::single(AttrId(0)), 2)
            .unwrap()
            .with_compaction_every(2);
        s.subscribe(Fd::linear(AttrId(0), AttrId(2))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([0, 1])).unwrap(); // 2nd delta -> compacts
        assert_eq!(s.router().n_slots(), 38);
        assert_eq!(s.n_live(), 38);
    }

    #[test]
    fn from_relation_routes_existing_rows() {
        let rel = Relation::from_rows(schema3(), fixture_rows()).unwrap();
        let mut s = ShardedSession::from_relation(rel, AttrSet::single(AttrId(0)), 3).unwrap();
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let mut single = StreamSession::new(schema3());
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        single
            .apply(&RowDelta::insert_only(fixture_rows()))
            .unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        assert_eq!(s.n_live(), 40);
    }

    /// An in-process shard that can be told to fail its next request —
    /// the unit-level stand-in for a killed `afd shard-worker` (the real
    /// process-kill test lives in the CLI crate's integration tests).
    struct FlakyShard {
        inner: InProcShard,
        fail_next: bool,
    }

    impl FlakyShard {
        fn trip(&mut self) -> Result<(), StreamError> {
            if self.fail_next {
                return Err(StreamError::Transport(TransportError::read(
                    "worker killed (simulated)",
                )));
            }
            Ok(())
        }
    }

    impl ShardBackend for FlakyShard {
        fn subscribe(&mut self, fd: &Fd) -> Result<usize, StreamError> {
            self.trip()?;
            self.inner.subscribe(fd)
        }
        fn apply(&mut self, delta: &RowDelta) -> Result<(), StreamError> {
            self.trip()?;
            self.inner.apply(delta)
        }
        fn table(&self, cid: usize) -> &IncTable {
            self.inner.table(cid)
        }
        fn n_live(&self) -> usize {
            self.inner.n_live()
        }
        fn n_y_side_ids(&self, cid: usize) -> usize {
            self.inner.n_y_side_ids(cid)
        }
        fn y_side_values(&self, cid: usize, id: u32) -> Vec<Value> {
            self.inner.y_side_values(cid, id)
        }
        fn snapshot(&mut self) -> Result<Relation, StreamError> {
            self.trip()?;
            self.inner.snapshot()
        }
        fn compact(&mut self) -> Result<CompactionReport, StreamError> {
            self.trip()?;
            self.inner.compact()
        }
    }

    #[test]
    fn backend_failure_mid_delta_poisons_but_reads_stay_consistent() {
        // FlakyShard does not support respawn, so a transport failure
        // skips recovery and poisons immediately — the fate of any
        // non-recoverable backend.
        let backends: Vec<FlakyShard> = (0..2)
            .map(|_| FlakyShard {
                inner: InProcShard::new(schema3()),
                fail_next: false,
            })
            .collect();
        let mut s =
            ShardedSession::with_backends(schema3(), AttrSet::single(AttrId(0)), backends).unwrap();
        assert!(!s.recovery_enabled());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        let before = s.scores(cid);
        // Kill shard 1 mid-delta: a typed transport error comes back and
        // score reads keep serving the pre-delta state.
        s.backend_mut(1).fail_next = true;
        let err = s.apply(&RowDelta::insert_only([row(1, 2, 0)])).unwrap_err();
        assert!(matches!(err, StreamError::Transport(_)), "{err}");
        assert!(s.scores(cid).bits_eq(&before));
        // The session is poisoned: further mutation is refused with a
        // typed error (even though the backend would now succeed), reads
        // still work.
        s.backend_mut(1).fail_next = false;
        assert!(matches!(
            s.apply(&RowDelta::insert_only([row(1, 2, 0)])),
            Err(StreamError::Poisoned(_))
        ));
        assert!(matches!(s.compact(), Err(StreamError::Poisoned(_))));
        assert!(s.scores(cid).bits_eq(&before));
        // Snapshot and table merges are refused too: the router's
        // placements ran ahead of the shard contents, so either could
        // panic or contradict the served scores.
        assert!(matches!(s.snapshot(), Err(StreamError::Poisoned(_))));
        assert!(matches!(s.merged_table(cid), Err(StreamError::Poisoned(_))));
        // All-zero recovery report for a non-recoverable topology.
        assert_eq!(s.recovery_report().total_respawns(), 0);
    }

    #[test]
    fn code_level_snapshot_matches_value_level_merge() {
        // The code-level snapshot must be row-identical to the old
        // per-row Value materialisation (kept inline here as the
        // reference).
        let mut s = sharded(3);
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        s.apply(&RowDelta::delete_only([1, 8, 21])).unwrap();
        s.apply(&RowDelta::insert_only([
            vec![Value::Null, Value::Int(1), Value::str("z")],
            row(3, 3, 3),
        ]))
        .unwrap();
        // Reference: walk placements and push value-level rows.
        let mut reference = Relation::empty(schema3());
        let mut shard_rows: Vec<Vec<Vec<Value>>> = (0..s.n_shards())
            .map(|i| {
                let snap = s.backend_mut(i).snapshot().unwrap();
                (0..snap.n_rows()).map(|r| snap.row(r)).collect()
            })
            .collect();
        let mut cursors = vec![0usize; shard_rows.len()];
        for slot in 0..s.router().n_slots() {
            if let Some((shard, _)) = s.router().placement_of(slot as RowId) {
                let sidx = shard as usize;
                let r = cursors[sidx];
                cursors[sidx] += 1;
                reference
                    .push_row(std::mem::take(&mut shard_rows[sidx][r]))
                    .unwrap();
            }
        }
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.n_rows(), reference.n_rows());
        for r in 0..snap.n_rows() {
            assert_eq!(snap.row(r), reference.row(r));
        }
    }

    #[test]
    fn multi_attribute_lhs_with_threads() {
        let fd = Fd::new(
            AttrSet::new([AttrId(0), AttrId(2)]),
            AttrSet::single(AttrId(1)),
        )
        .unwrap();
        let mut s = sharded(3).with_threads(3);
        let cid = s.subscribe(fd.clone()).unwrap();
        let mut single = StreamSession::new(schema3());
        let c1 = single.subscribe(fd).unwrap();
        s.apply(&RowDelta::insert_only(fixture_rows())).unwrap();
        single
            .apply(&RowDelta::insert_only(fixture_rows()))
            .unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }

    use crate::fault::{ChaosShard, WorkerFault, WorkerFaultKind};

    fn fast_recovery(checkpoint_every: u64) -> RecoveryConfig {
        RecoveryConfig {
            checkpoint_every,
            retry_budget: 3,
            backoff_ms: 0,
            request_timeout_ms: 1_000,
        }
    }

    fn chaos_session(
        faults: Vec<Option<WorkerFault>>,
        checkpoint_every: u64,
    ) -> ShardedSession<ChaosShard> {
        let backends = faults
            .into_iter()
            .map(|f| ChaosShard::new(schema3(), f))
            .collect();
        ShardedSession::with_backends(schema3(), AttrSet::single(AttrId(0)), backends)
            .unwrap()
            .with_recovery(fast_recovery(checkpoint_every))
            .unwrap()
    }

    #[test]
    fn injected_kill_mid_apply_recovers_bit_identically() {
        let fault = WorkerFault {
            site: 5,
            kind: WorkerFaultKind::Kill,
        };
        let mut s = chaos_session(vec![None, Some(fault)], 2);
        assert!(s.recovery_enabled());
        let mut single = StreamSession::new(schema3());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let rows = fixture_rows();
        for chunk in rows.chunks(4) {
            let d = RowDelta::insert_only(chunk.to_vec());
            s.apply(&d).unwrap();
            single.apply(&d).unwrap();
        }
        let d = RowDelta::delete_only([3, 13, 20]);
        s.apply(&d).unwrap();
        single.apply(&d).unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        let report = s.recovery_report();
        assert!(report.total_respawns() >= 1, "{report:?}");
        // Rows (and their global order) survive recovery too.
        let snap = s.snapshot().unwrap();
        let want = single.relation().snapshot();
        assert_eq!(snap.n_rows(), want.n_rows());
        for r in 0..want.n_rows() {
            assert_eq!(snap.row(r), want.row(r));
        }
    }

    #[test]
    fn recovery_replays_deletes_and_serves_later_deletes() {
        // Checkpoint every 3 applies; the fault lands after deletes have
        // entered the replay log, and more deletes follow recovery — the
        // alias translation is exercised on both sides of the failure.
        let fault = WorkerFault {
            site: 9,
            kind: WorkerFaultKind::Kill,
        };
        let mut s = chaos_session(vec![Some(fault), None], 3);
        let mut single = StreamSession::new(schema3());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let rows = fixture_rows();
        let script: Vec<RowDelta> = vec![
            RowDelta::insert_only(rows[..10].to_vec()),
            RowDelta::delete_only([0, 4]),
            RowDelta::insert_only(rows[10..20].to_vec()),
            RowDelta::delete_only([12, 7, 19]),
            RowDelta::insert_only(rows[20..30].to_vec()),
            RowDelta::delete_only([2, 25]),
            RowDelta::insert_only(rows[30..].to_vec()),
            RowDelta::delete_only([30, 1, 33]),
        ];
        for d in &script {
            s.apply(d).unwrap();
            single.apply(d).unwrap();
        }
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        assert!(s.recovery_report().total_respawns() >= 1);
        let snap = s.snapshot().unwrap();
        let want = single.relation().snapshot();
        assert_eq!(snap.n_rows(), want.n_rows());
        for r in 0..want.n_rows() {
            assert_eq!(snap.row(r), want.row(r));
        }
        // Compaction still verifies cleanly post-recovery.
        s.compact().unwrap();
        single.compact().unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }

    #[test]
    fn injected_fault_mid_subscribe_recovers() {
        let fault = WorkerFault {
            site: 1,
            kind: WorkerFaultKind::Kill,
        };
        let mut s = chaos_session(vec![None, Some(fault)], 4);
        let mut single = StreamSession::new(schema3());
        // The very first fan-out request to shard 1 dies; recovery
        // restores lockstep and the subscribe lands.
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        assert!(s.recovery_report().total_respawns() >= 1);
        let d = RowDelta::insert_only(fixture_rows());
        s.apply(&d).unwrap();
        single.apply(&d).unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }

    #[test]
    fn injected_fault_mid_compaction_recovers() {
        let mut s = chaos_session(vec![None, None], 8);
        let mut single = StreamSession::new(schema3());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let d = RowDelta::insert_only(fixture_rows());
        s.apply(&d).unwrap();
        single.apply(&d).unwrap();
        let d = RowDelta::delete_only([5, 11, 31]);
        s.apply(&d).unwrap();
        single.apply(&d).unwrap();
        // The next request shard 0 sees is its compact — kill it there.
        s.backend_mut(0).arm(WorkerFault {
            site: 1,
            kind: WorkerFaultKind::Kill,
        });
        let report = s.compact().unwrap();
        single.compact().unwrap();
        assert_eq!(report.rows_dropped, 3);
        assert!(s.recovery_report().total_respawns() >= 1);
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        // Post-compaction ids are dense again and the session keeps
        // accepting deltas.
        let d = RowDelta::delete_only([36]);
        s.apply(&d).unwrap();
        single.apply(&d).unwrap();
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }

    #[test]
    fn stall_fault_maps_to_timeout_and_recovers() {
        let fault = WorkerFault {
            site: 3,
            kind: WorkerFaultKind::Stall { millis: 50 },
        };
        let mut s = chaos_session(vec![Some(fault)], 4);
        let mut single = StreamSession::new(schema3());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        for chunk in fixture_rows().chunks(10) {
            let d = RowDelta::insert_only(chunk.to_vec());
            s.apply(&d).unwrap();
            single.apply(&d).unwrap();
        }
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
        assert!(s.recovery_report().total_respawns() >= 1);
    }

    #[test]
    fn sticky_fault_exhausts_retry_budget_and_poisons() {
        let fault = WorkerFault {
            site: 2,
            kind: WorkerFaultKind::Kill,
        };
        let backends = vec![ChaosShard::new(schema3(), Some(fault)).sticky()];
        let mut s = ShardedSession::with_backends(schema3(), AttrSet::single(AttrId(0)), backends)
            .unwrap()
            .with_recovery(RecoveryConfig {
                checkpoint_every: 8,
                retry_budget: 2,
                backoff_ms: 0,
                request_timeout_ms: 1_000,
            })
            .unwrap();
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let before = s.scores(cid);
        let err = s.apply(&RowDelta::insert_only(fixture_rows())).unwrap_err();
        assert!(matches!(err, StreamError::Transport(_)), "{err}");
        // Every attempt respawned and refaulted: the whole budget burned.
        assert_eq!(s.recovery_report().total_respawns(), 2);
        assert!(matches!(
            s.apply(&RowDelta::insert_only([row(1, 2, 0)])),
            Err(StreamError::Poisoned(_))
        ));
        assert!(s.scores(cid).bits_eq(&before));
    }

    #[test]
    fn tight_checkpoints_bound_replay() {
        // checkpoint_every == 1: the log is truncated after every apply,
        // so recovery replays nothing (the in-flight slice is retried,
        // not replayed).
        let fault = WorkerFault {
            site: 20,
            kind: WorkerFaultKind::Kill,
        };
        let mut s = chaos_session(vec![Some(fault)], 1);
        let mut single = StreamSession::new(schema3());
        let cid = s.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        let c1 = single.subscribe(Fd::linear(AttrId(0), AttrId(1))).unwrap();
        for chunk in fixture_rows().chunks(4) {
            let d = RowDelta::insert_only(chunk.to_vec());
            s.apply(&d).unwrap();
            single.apply(&d).unwrap();
        }
        let report = s.recovery_report();
        assert!(report.total_respawns() >= 1);
        assert_eq!(report.total_deltas_replayed(), 0, "{report:?}");
        assert!(s.scores(cid).bits_eq(&single.scores(c1)));
    }

    #[test]
    fn invalid_recovery_config_rejected() {
        let err = chaos_try(RecoveryConfig {
            checkpoint_every: 0,
            ..RecoveryConfig::default()
        });
        assert!(matches!(err, Err(StreamError::ShardConfig(_))));
        let err = chaos_try(RecoveryConfig {
            retry_budget: 0,
            ..RecoveryConfig::default()
        });
        assert!(matches!(err, Err(StreamError::ShardConfig(_))));
    }

    fn chaos_try(cfg: RecoveryConfig) -> Result<ShardedSession<ChaosShard>, StreamError> {
        ShardedSession::with_backends(
            schema3(),
            AttrSet::single(AttrId(0)),
            vec![ChaosShard::new(schema3(), None)],
        )?
        .with_recovery(cfg)
    }
}
