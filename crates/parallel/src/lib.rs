//! # afd-parallel
//!
//! Deterministic scoped-thread fan-out for the AFD workspace — a
//! dependency-free stand-in for rayon's `par_iter().map().collect()`
//! shape, built on `std::thread::scope`.
//!
//! Guarantees:
//!
//! * **Deterministic output order**: results come back in input order
//!   regardless of which worker computed them.
//! * **Work stealing via an atomic cursor**: workers pull the next index
//!   when free, so skewed per-item costs balance out.
//! * **Per-worker state** ([`par_map_with`]): each worker builds one `S`
//!   (e.g. an `afd-relation` kernel `Scratch` buffer) and reuses it
//!   across all items it processes — the hook that keeps the hot
//!   partition kernels allocation-free under parallelism.
//!
//! Thread count defaults to [`max_threads`] (`AFD_THREADS` env override,
//! else `std::thread::available_parallelism`). Every entry point runs
//! inline (no threads spawned) when `threads <= 1` or there are fewer
//! than two items.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the `AFD_THREADS` env var when set, else the
/// machine's available parallelism.
///
/// # Panics
/// Panics with a clear message when `AFD_THREADS` is set but is not a
/// positive integer (`0`, garbage, empty). A misconfigured override used
/// to fall through silently — either clamped to 1 or ignored — which on
/// a single-core CI box is indistinguishable from working; failing loudly
/// is the only observable behaviour there. Callers that would rather get
/// a `Result` (the engine front door) use [`try_max_threads`].
pub fn max_threads() -> usize {
    match try_max_threads() {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// As [`max_threads`], but a misconfigured `AFD_THREADS` comes back as
/// `Err` (same message the panic would carry) instead of aborting — the
/// form `AfdEngine` callers consume.
///
/// # Errors
/// A descriptive message when `AFD_THREADS` is set but is not a positive
/// integer (`0`, garbage, empty).
pub fn try_max_threads() -> Result<usize, String> {
    Ok(
        match parse_thread_override(std::env::var("AFD_THREADS").ok().as_deref())? {
            Some(n) => n,
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        },
    )
}

/// Parses an `AFD_THREADS` override: `None` when unset, `Some(n)` for a
/// positive integer, and a descriptive error for `0` or garbage.
fn parse_thread_override(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("AFD_THREADS must be a positive worker count, got 0".to_string()),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "AFD_THREADS must be a positive worker count, got {raw:?}"
        )),
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in input order. `f(i, &items[i])` must be pure up to side effects the
/// caller synchronises; panics in workers propagate.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), move |(), i, item| f(i, item))
}

/// As [`par_map`], but each worker first builds a local state `S` via
/// `init` and threads it through every item it processes. Use this to
/// reuse scratch allocations across items.
pub fn par_map_with<T, S, R, F, I>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }
    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("parallel worker panicked"));
        }
    });
    // Reassemble in input order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed exactly once"))
        .collect()
}

/// Maps `f` over mutable items on up to `threads` workers, returning
/// results in input order. Unlike [`par_map`] the items are handed out as
/// contiguous per-worker chunks (not stolen one by one), which is the
/// right shape for its use case — fanning deltas across session shards,
/// where item counts are small and per-item cost is balanced by routing.
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut buckets: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(w, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(w * chunk + j, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("parallel worker panicked"));
        }
    });
    buckets.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let par = par_map(&items, threads, |_, &x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_reuses_state() {
        let items: Vec<usize> = (0..100).collect();
        // Each worker counts how many items it saw; sum must be n.
        let counts = par_map_with(
            &items,
            4,
            || 0usize,
            |seen, _, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(counts.len(), 100);
        // Per-worker counters only grow, proving state persistence.
        assert!(counts.iter().any(|&(_, seen)| seen > 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(par_map::<u32, u32, _>(&[], 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn try_max_threads_agrees_with_max_threads() {
        // Neither form consults the env here beyond what the other does;
        // with a clean/valid environment both return the same count.
        assert_eq!(try_max_threads().unwrap(), max_threads());
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_preserves_order() {
        let mut items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 4, 8] {
            let mut clone = items.clone();
            let out = par_map_mut(&mut clone, threads, |i, x| {
                *x += 1;
                *x + i as u64
            });
            let seq: Vec<u64> = items.iter().map(|&x| x + x + 1).collect();
            assert_eq!(out, seq, "threads={threads}");
            assert!(clone.iter().zip(&items).all(|(a, b)| *a == b + 1));
        }
        let _ = &mut items;
    }

    #[test]
    fn par_map_mut_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, 4, |_, x| *x).is_empty());
        let mut one = vec![7u32];
        assert_eq!(par_map_mut(&mut one, 4, |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn thread_override_accepts_positive_integers() {
        assert_eq!(parse_thread_override(None), Ok(None));
        assert_eq!(parse_thread_override(Some("1")), Ok(Some(1)));
        assert_eq!(parse_thread_override(Some("16")), Ok(Some(16)));
        assert_eq!(parse_thread_override(Some(" 4 ")), Ok(Some(4)));
    }

    #[test]
    fn thread_override_rejects_zero_and_garbage() {
        for bad in ["0", "", "  ", "-3", "two", "4.5", "1e3"] {
            let err = parse_thread_override(Some(bad)).unwrap_err();
            assert!(
                err.contains("AFD_THREADS") && err.contains("positive"),
                "unhelpful error for {bad:?}: {err}"
            );
        }
    }
}
