//! # afd-synth
//!
//! Synthetic data generation for the AFD measure study (Section V):
//!
//! * [`beta`]: Beta(α, β) sampling (via Marsaglia–Tsang Gamma) and a
//!   skewness solver — the value distributions of the paper's generator;
//! * [`generator`]: the B⁺/B⁻ generation process — dictionary-based FDs,
//!   independent negatives, and the copy error channel;
//! * [`error_channel`]: the copy/typo/bogus channels of Appendix G with
//!   the `⌊N_x/2⌋` per-group cap;
//! * [`benchmarks`]: the ERR / UNIQ / SKEW sensitivity benchmarks with
//!   lazy, per-step deterministic generation.
//!
//! ```
//! use afd_synth::{SynthBenchmark, Axis};
//! use afd_relation::{Fd, AttrId};
//!
//! let bench = SynthBenchmark { axis: Axis::ErrorRate, steps: 3,
//!     tables_per_step: 2, rows: (100, 200), seed: 1 };
//! let step = bench.generate_step(2); // η ≈ 10%
//! let fd = Fd::linear(AttrId(0), AttrId(1));
//! assert!(step.positives.iter().all(|r| !fd.holds_in(r)));
//! ```

pub mod benchmarks;
pub mod beta;
pub mod error_channel;
pub mod generator;

pub use benchmarks::{Axis, StepData, SynthBenchmark};
pub use beta::{sample_gamma, Beta};
pub use error_channel::{inject_errors, ErrorType};
pub use generator::{
    apply_copy_errors, generate_negative, generate_positive, sample_low_skew_beta, GenParams,
};
