//! The three synthetic sensitivity benchmarks: ERR, UNIQ and SKEW
//! (Section V-A).
//!
//! Each benchmark sweeps one structural parameter over `steps` values and
//! generates `tables_per_step` positive (B⁺: FD + controlled errors) and
//! negative (B⁻: independent X, Y) relations per step. Generation is lazy
//! and deterministic: each `(benchmark, step, table)` triple derives its
//! own seed, so experiments can be re-run per step without materialising
//! 5000 relations at once.

use afd_relation::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::beta::Beta;
use crate::generator::{generate_negative, generate_positive, GenParams};

/// The swept structural axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Error rate η ∈ [0, 10%] (benchmark ERR).
    ErrorRate,
    /// LHS-domain multiplier `|dom(X)|/N` ∈ [0.2, 10] (benchmark UNIQ;
    /// the paper sweeps `|dom(X)|` from `N/5` to `10N` — multipliers
    /// beyond 1 oversample the domain and push the *measured*
    /// LHS-uniqueness towards 1).
    LhsUniqueness,
    /// RHS-skew ∈ [0, 10] (benchmark SKEW).
    RhsSkew,
}

impl Axis {
    /// Benchmark name as used in the paper ("ERR", "UNIQ", "SKEW").
    pub fn name(self) -> &'static str {
        match self {
            Axis::ErrorRate => "ERR",
            Axis::LhsUniqueness => "UNIQ",
            Axis::RhsSkew => "SKEW",
        }
    }

    /// The swept parameter value at `step` of `steps`.
    pub fn param(self, step: usize, steps: usize) -> f64 {
        let t = if steps <= 1 {
            0.0
        } else {
            step as f64 / (steps - 1) as f64
        };
        match self {
            Axis::ErrorRate => 0.10 * t,
            Axis::LhsUniqueness => 0.2 + (10.0 - 0.2) * t,
            Axis::RhsSkew => 10.0 * t,
        }
    }
}

/// One synthetic benchmark (= one row of Figure 1).
#[derive(Debug, Clone)]
pub struct SynthBenchmark {
    /// Which parameter is swept.
    pub axis: Axis,
    /// Number of sweep steps (paper: 50).
    pub steps: usize,
    /// Positive (and negative) tables per step (paper: 50).
    pub tables_per_step: usize,
    /// Row-count range (paper: [100, 10000]).
    pub rows: (usize, usize),
    /// Master seed; all generation derives from it deterministically.
    pub seed: u64,
}

/// The relations of one sweep step.
#[derive(Debug)]
pub struct StepData {
    /// The swept parameter's value at this step.
    pub param: f64,
    /// B⁺ tables: generated to satisfy `X → Y`, then corrupted.
    pub positives: Vec<Relation>,
    /// B⁻ tables: `X`, `Y` independent.
    pub negatives: Vec<Relation>,
}

impl SynthBenchmark {
    /// Paper-scale benchmark: 50 steps × 50 tables, rows ∈ [100, 10000].
    pub fn paper_scale(axis: Axis, seed: u64) -> Self {
        SynthBenchmark {
            axis,
            steps: 50,
            tables_per_step: 50,
            rows: (100, 10_000),
            seed,
        }
    }

    /// Laptop-scale benchmark for quick runs: fewer steps, fewer and
    /// smaller tables — the separation curves keep their shape.
    pub fn laptop_scale(axis: Axis, seed: u64) -> Self {
        SynthBenchmark {
            axis,
            steps: 13,
            tables_per_step: 8,
            rows: (100, 1200),
            seed,
        }
    }

    /// The swept parameter's value at `step`.
    pub fn param(&self, step: usize) -> f64 {
        self.axis.param(step, self.steps)
    }

    /// Generates all tables of one step (deterministic in
    /// `(seed, axis, step)`).
    ///
    /// # Panics
    /// Panics if `step >= self.steps` (programmer error).
    pub fn generate_step(&self, step: usize) -> StepData {
        assert!(step < self.steps, "step {step} out of {}", self.steps);
        let param = self.param(step);
        let mut positives = Vec::with_capacity(self.tables_per_step);
        let mut negatives = Vec::with_capacity(self.tables_per_step);
        for table in 0..self.tables_per_step {
            let mut rng = self.table_rng(step, table);
            let p = self.table_params(param, &mut rng);
            let (pos, _) = generate_positive(&p, &mut rng);
            positives.push(pos);
            negatives.push(generate_negative(&p, &mut rng));
        }
        StepData {
            param,
            positives,
            negatives,
        }
    }

    fn table_rng(&self, step: usize, table: usize) -> StdRng {
        // SplitMix64-style seed derivation keeps tables independent.
        let mut z = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(1 + step as u64))
            .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(1 + table as u64))
            .wrapping_add(match self.axis {
                Axis::ErrorRate => 0x1000,
                Axis::LhsUniqueness => 0x2000,
                Axis::RhsSkew => 0x3000,
            });
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Samples per-table parameters, then pins the swept axis to `param`.
    fn table_params(&self, param: f64, rng: &mut StdRng) -> GenParams {
        let n_rows = rng.gen_range(self.rows.0..=self.rows.1);
        let mut p = GenParams::sample_with_rows(n_rows, rng);
        match self.axis {
            Axis::ErrorRate => p.error_rate = param,
            Axis::LhsUniqueness => {
                p.dom_x = ((param * n_rows as f64) as usize).max(2);
                p.dom_y = rng.gen_range(5..=(p.dom_x / 2).max(6)).max(2);
            }
            Axis::RhsSkew => p.beta_y = Beta::with_skewness(param),
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::{lhs_uniqueness, rhs_skew, AttrId, AttrSet, Fd};

    fn tiny(axis: Axis) -> SynthBenchmark {
        SynthBenchmark {
            axis,
            steps: 5,
            tables_per_step: 3,
            rows: (100, 400),
            seed: 7,
        }
    }

    #[test]
    fn axis_param_endpoints() {
        assert_eq!(Axis::ErrorRate.param(0, 50), 0.0);
        assert!((Axis::ErrorRate.param(49, 50) - 0.10).abs() < 1e-12);
        assert!((Axis::LhsUniqueness.param(0, 50) - 0.2).abs() < 1e-12);
        assert!((Axis::LhsUniqueness.param(49, 50) - 10.0).abs() < 1e-12);
        assert!((Axis::RhsSkew.param(49, 50) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn step_counts_and_determinism() {
        let b = tiny(Axis::ErrorRate);
        let s1 = b.generate_step(2);
        let s2 = b.generate_step(2);
        assert_eq!(s1.positives.len(), 3);
        assert_eq!(s1.negatives.len(), 3);
        for (a, b) in s1.positives.iter().zip(&s2.positives) {
            assert_eq!(a.n_rows(), b.n_rows());
            for i in 0..a.n_rows() {
                assert_eq!(a.row(i), b.row(i));
            }
        }
    }

    #[test]
    fn err_step_zero_positives_satisfy_fd() {
        let b = tiny(Axis::ErrorRate);
        let s = b.generate_step(0);
        for rel in &s.positives {
            assert!(Fd::linear(AttrId(0), AttrId(1)).holds_in(rel));
        }
    }

    #[test]
    fn err_high_steps_violate_fd() {
        let b = tiny(Axis::ErrorRate);
        let s = b.generate_step(4); // η = 10%
        for rel in &s.positives {
            assert!(!Fd::linear(AttrId(0), AttrId(1)).holds_in(rel));
        }
    }

    #[test]
    fn uniq_benchmark_raises_measured_uniqueness() {
        let b = tiny(Axis::LhsUniqueness);
        let avg_u = |step: usize| {
            let s = b.generate_step(step);
            let all: Vec<_> = s.positives.iter().chain(&s.negatives).collect();
            all.iter()
                .map(|r| lhs_uniqueness(r, &AttrSet::single(AttrId(0))))
                .sum::<f64>()
                / all.len() as f64
        };
        let low = avg_u(0); // multiplier 0.2
        let high = avg_u(4); // multiplier 10: oversampled domain
        assert!(low < 0.4, "low={low}");
        assert!(high > 0.75, "high={high}");
    }

    #[test]
    fn skew_benchmark_raises_measured_skew() {
        let b = SynthBenchmark {
            axis: Axis::RhsSkew,
            steps: 5,
            tables_per_step: 4,
            rows: (1000, 2000),
            seed: 11,
        };
        let low: f64 = b
            .generate_step(0)
            .negatives
            .iter()
            .map(|r| rhs_skew(r, AttrId(1)))
            .sum::<f64>()
            / 4.0;
        let high: f64 = b
            .generate_step(4)
            .negatives
            .iter()
            .map(|r| rhs_skew(r, AttrId(1)))
            .sum::<f64>()
            / 4.0;
        assert!(
            high > low + 1.0,
            "measured skew should rise along the sweep: low={low} high={high}"
        );
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_step_panics() {
        tiny(Axis::ErrorRate).generate_step(99);
    }
}
