//! The paper's B⁺/B⁻ relation generation process (Section V-A).
//!
//! Every synthetic relation is binary, over attributes `X` and `Y`.
//! Negative instances draw `X` and `Y` independently from Beta-shaped
//! distributions over their domains; positive instances first build a
//! dictionary `D : dom(X) → dom(Y)` (so the FD `X → Y` holds by
//! construction) and then pass the relation through a controlled error
//! channel that overwrites `k = ⌊η·N⌋` `Y`-cells with the `Y`-value of
//! another tuple — keeping `dom(Y)` and the `X` column stable, exactly as
//! in the paper.

use afd_relation::{AttrId, Relation};
use rand::Rng;

use crate::beta::Beta;

/// Parameters of one synthetic relation (Section V-A ranges).
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Number of tuples `|R|`.
    pub n_rows: usize,
    /// Target `|dom(X)|`.
    pub dom_x: usize,
    /// Target `|dom(Y)|`.
    pub dom_y: usize,
    /// Value distribution of `X` over its domain.
    pub beta_x: Beta,
    /// Value distribution of `Y` over its domain.
    pub beta_y: Beta,
    /// Error rate η: fraction of tuples modified by the error channel.
    pub error_rate: f64,
}

impl GenParams {
    /// Samples parameters uniformly from the paper's ranges:
    /// `|R| ∈ [100, 10000]`, `|dom(X)| ∈ [N/5, 3N/4]`,
    /// `|dom(Y)| ∈ [5, |dom(X)|/2]`, `η ∈ [0.5%, 2%]`, and Beta shapes
    /// with skewness at most 1 (α ∈ (0,1], β ∈ [1,10]).
    pub fn sample(rng: &mut impl Rng) -> Self {
        Self::sample_with_rows(rng.gen_range(100..=10_000), rng)
    }

    /// As [`GenParams::sample`] but with a fixed row count — used to scale
    /// experiments down deterministically.
    pub fn sample_with_rows(n_rows: usize, rng: &mut impl Rng) -> Self {
        let dom_x = rng.gen_range(n_rows / 5..=(3 * n_rows / 4).max(n_rows / 5 + 1));
        let dom_y = rng.gen_range(5..=(dom_x / 2).max(6));
        GenParams {
            n_rows,
            dom_x: dom_x.max(2),
            dom_y: dom_y.max(2),
            beta_x: sample_low_skew_beta(rng),
            beta_y: sample_low_skew_beta(rng),
            error_rate: rng.gen_range(0.005..=0.02),
        }
    }
}

/// Rejection-samples Beta shapes from α ∈ (0,1], β ∈ [1,10] until the
/// skewness is at most 1 (the paper's default cap outside SKEW).
pub fn sample_low_skew_beta(rng: &mut impl Rng) -> Beta {
    loop {
        let alpha = rng.gen_range(f64::EPSILON..=1.0);
        let beta = rng.gen_range(1.0..=10.0);
        let b = Beta::new(alpha, beta);
        if b.skewness() <= 1.0 {
            return b;
        }
    }
}

/// Generates a B⁻ instance: `X` and `Y` sampled independently.
pub fn generate_negative(p: &GenParams, rng: &mut impl Rng) -> Relation {
    Relation::from_pairs((0..p.n_rows).map(|_| {
        (
            p.beta_x.sample_index(p.dom_x, rng) as u64,
            p.beta_y.sample_index(p.dom_y, rng) as u64,
        )
    }))
}

/// Generates a B⁺ instance: builds the dictionary `D`, materialises a
/// clean relation satisfying `X → Y`, then applies the copy error channel
/// at rate `p.error_rate`. Returns the relation and the number of cells
/// actually modified.
pub fn generate_positive(p: &GenParams, rng: &mut impl Rng) -> (Relation, usize) {
    // Dictionary D(x) ~ Beta_Y over dom(Y).
    let dict: Vec<u64> = (0..p.dom_x)
        .map(|_| p.beta_y.sample_index(p.dom_y, rng) as u64)
        .collect();
    let xs: Vec<usize> = (0..p.n_rows)
        .map(|_| p.beta_x.sample_index(p.dom_x, rng))
        .collect();
    let mut rel = Relation::from_pairs(xs.iter().map(|&x| (x as u64, dict[x])));
    let k = (p.error_rate * p.n_rows as f64).floor() as usize;
    let modified = apply_copy_errors(&mut rel, AttrId(1), k, rng);
    (rel, modified)
}

/// The paper's synthetic error channel: for `k` randomly chosen tuples `w`,
/// pick any tuple `w̃` with a different `Y`-value and overwrite `w`'s `Y`
/// with it. No new `Y`-values are introduced and `X` is untouched.
///
/// Returns the number of cells modified (less than `k` only if the column
/// is constant, in which case no error can be introduced at all).
pub fn apply_copy_errors(rel: &mut Relation, y: AttrId, k: usize, rng: &mut impl Rng) -> usize {
    let n = rel.n_rows();
    if n < 2 || k == 0 {
        return 0;
    }
    let mut modified = 0;
    let mut chosen = vec![false; n];
    let mut attempts = 0;
    while modified < k && attempts < 20 * k + 100 {
        attempts += 1;
        let row = rng.gen_range(0..n);
        if chosen[row] {
            continue;
        }
        let current = rel.value(row, y);
        // Find a donor with a different Y value.
        let mut donor_value = None;
        for _ in 0..64 {
            let d = rng.gen_range(0..n);
            let v = rel.value(d, y);
            if v != current {
                donor_value = Some(v);
                break;
            }
        }
        let Some(v) = donor_value else {
            // Column is (nearly) constant; nothing to copy.
            break;
        };
        rel.set_value(row, y, v);
        chosen[row] = true;
        modified += 1;
    }
    modified
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::{lhs_uniqueness, AttrSet, Fd, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(n: usize, seed: u64) -> (GenParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        (GenParams::sample_with_rows(n, &mut rng), rng)
    }

    #[test]
    fn sampled_params_within_paper_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = GenParams::sample_with_rows(1000, &mut rng);
            assert!(p.dom_x >= 200 && p.dom_x <= 751, "dom_x={}", p.dom_x);
            assert!(p.dom_y >= 2 && p.dom_y <= p.dom_x / 2 + 6);
            assert!((0.005..=0.02).contains(&p.error_rate));
            assert!(p.beta_x.skewness() <= 1.0);
            assert!(p.beta_y.skewness() <= 1.0);
        }
    }

    #[test]
    fn positive_without_errors_satisfies_fd() {
        let (mut p, mut rng) = params(500, 2);
        p.error_rate = 0.0;
        let (rel, modified) = generate_positive(&p, &mut rng);
        assert_eq!(modified, 0);
        assert!(Fd::linear(AttrId(0), AttrId(1)).holds_in(&rel));
        assert_eq!(rel.n_rows(), 500);
    }

    #[test]
    fn positive_with_errors_modifies_k_cells() {
        let (mut p, mut rng) = params(1000, 3);
        p.error_rate = 0.02;
        let (rel, modified) = generate_positive(&p, &mut rng);
        assert_eq!(modified, 20);
        assert_eq!(rel.n_rows(), 1000);
    }

    #[test]
    fn error_channel_keeps_dom_y_stable() {
        let (mut p, mut rng) = params(800, 4);
        p.error_rate = 0.05;
        let dom_before_gen = p.dom_y;
        let (rel, _) = generate_positive(&p, &mut rng);
        let observed = rel.distinct_count(&AttrSet::single(AttrId(1)));
        assert!(observed <= dom_before_gen);
    }

    #[test]
    fn negative_instances_look_independent() {
        // Independence is statistical; just check the FD rarely holds and
        // domains are roughly as requested.
        let (p, mut rng) = params(2000, 5);
        let rel = generate_negative(&p, &mut rng);
        assert_eq!(rel.n_rows(), 2000);
        assert!(!Fd::linear(AttrId(0), AttrId(1)).holds_in(&rel));
        let u = lhs_uniqueness(&rel, &AttrSet::single(AttrId(0)));
        // dom_x ∈ [N/5, 3N/4]; sampling with collisions keeps u near that.
        assert!(u > 0.1 && u < 0.9, "uniqueness={u}");
    }

    #[test]
    fn copy_errors_on_constant_column_are_impossible() {
        let mut rel = Relation::from_pairs([(1, 5), (2, 5), (3, 5)]);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(apply_copy_errors(&mut rel, AttrId(1), 2, &mut rng), 0);
    }

    #[test]
    fn copy_errors_never_invent_values() {
        let mut rel = Relation::from_pairs([(1, 5), (2, 6), (3, 5), (4, 6), (5, 5)]);
        let mut rng = StdRng::seed_from_u64(7);
        apply_copy_errors(&mut rel, AttrId(1), 3, &mut rng);
        for r in 0..rel.n_rows() {
            let v = rel.value(r, AttrId(1));
            assert!(v == Value::Int(5) || v == Value::Int(6), "got {v:?}");
        }
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (p1, mut rng1) = params(300, 42);
        let (p2, mut rng2) = params(300, 42);
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
        let (a, _) = generate_positive(&p1, &mut rng1);
        let (b, _) = generate_positive(&p2, &mut rng2);
        for i in 0..a.n_rows() {
            assert_eq!(a.row(i), b.row(i));
        }
    }
}
