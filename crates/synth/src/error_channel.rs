//! Controlled error channels for real-world relations (Appendix G).
//!
//! Three error types, following Arocena et al.'s BART taxonomy as adopted
//! by the paper:
//!
//! * **copy** — overwrite `w|Y` with the `Y`-value of another tuple
//!   (keeps `dom(Y)` stable),
//! * **typo** — replace `w|Y` with one of three fixed typo variants of the
//!   original value (introduces a bounded number of new values),
//! * **bogus** — replace `w|Y` with a freshly generated unique value
//!   (introduces one new value per error).
//!
//! To guarantee that increasing error levels never *reduce* violations, at
//! most `⌊N_x / 2⌋` tuples are modified per `X`-group `x` (`N_x` = group
//! size), exactly as the paper prescribes.

use afd_relation::{AttrId, AttrSet, Relation, Value, NULL_CODE};
use rand::Rng;

/// The three error types of Appendix G.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorType {
    /// Copy another tuple's `Y`-value.
    Copy,
    /// One of three typo variants of the original value.
    Typo,
    /// A globally unique bogus value.
    Bogus,
}

impl ErrorType {
    /// All three types, in the paper's order.
    pub fn all() -> [ErrorType; 3] {
        [ErrorType::Copy, ErrorType::Typo, ErrorType::Bogus]
    }

    /// Lowercase name as used in Table VIII headers.
    pub fn name(self) -> &'static str {
        match self {
            ErrorType::Copy => "copy",
            ErrorType::Typo => "typo",
            ErrorType::Bogus => "bogus",
        }
    }
}

/// Derives the `i`-th (1..=3) typo variant of a value: a string with a
/// deterministic mangled suffix, mimicking a recurring misspelling.
fn typo_variant(v: &Value, i: usize) -> Value {
    Value::str(format!("{}~typo{}", v.render(), i))
}

/// Injects up to `k` errors of type `etype` into the `y` column of `rel`,
/// respecting the per-`X`-group cap `⌊N_x/2⌋` w.r.t. the `x` column.
/// Rows with NULL in `x` or `y` are never selected. Returns the number of
/// cells modified (may be < `k` when the caps bind).
pub fn inject_errors(
    rel: &mut Relation,
    x: AttrId,
    y: AttrId,
    k: usize,
    etype: ErrorType,
    rng: &mut impl Rng,
) -> usize {
    let n = rel.n_rows();
    if n == 0 || k == 0 {
        return 0;
    }
    let enc = rel.group_encode(&AttrSet::single(x));
    // Group sizes and per-group caps.
    let mut group_size = vec![0u32; enc.n_groups as usize];
    for &c in &enc.codes {
        if c != NULL_CODE {
            group_size[c as usize] += 1;
        }
    }
    let mut budget: Vec<u32> = group_size.iter().map(|&s| s / 2).collect();
    // Candidate rows in random order.
    let mut order: Vec<usize> = (0..n)
        .filter(|&r| enc.codes[r] != NULL_CODE && !rel.value(r, y).is_null())
        .collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut modified = 0usize;
    let mut bogus_counter = 0u64;
    for row in order {
        if modified >= k {
            break;
        }
        let g = enc.codes[row] as usize;
        if budget[g] == 0 {
            continue;
        }
        let current = rel.value(row, y);
        let replacement = match etype {
            ErrorType::Copy => {
                let mut found = None;
                for _ in 0..64 {
                    let d = rng.gen_range(0..n);
                    let v = rel.value(d, y);
                    if !v.is_null() && v != current {
                        found = Some(v);
                        break;
                    }
                }
                match found {
                    Some(v) => v,
                    None => continue, // (nearly) constant column
                }
            }
            ErrorType::Typo => typo_variant(&current, rng.gen_range(1..=3)),
            ErrorType::Bogus => {
                bogus_counter += 1;
                Value::str(format!("bogus_{row}_{bogus_counter}"))
            }
        };
        rel.set_value(row, y, replacement);
        budget[g] -= 1;
        modified += 1;
    }
    modified
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_relation::Fd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A clean FD X -> Y with 10 groups of 6 rows each.
    fn clean() -> Relation {
        Relation::from_pairs((0..60).map(|i| (i as u64 / 6, (i as u64 / 6) % 4)))
    }

    #[test]
    fn copy_keeps_domain_stable() {
        let mut rel = clean();
        let before = rel.distinct_count(&AttrSet::single(AttrId(1)));
        let mut rng = StdRng::seed_from_u64(1);
        let m = inject_errors(
            &mut rel,
            AttrId(0),
            AttrId(1),
            10,
            ErrorType::Copy,
            &mut rng,
        );
        assert_eq!(m, 10);
        assert!(rel.distinct_count(&AttrSet::single(AttrId(1))) <= before);
        assert!(!Fd::linear(AttrId(0), AttrId(1)).holds_in(&rel));
    }

    #[test]
    fn typo_introduces_bounded_new_values() {
        let mut rel = clean();
        let before = rel.distinct_count(&AttrSet::single(AttrId(1)));
        let mut rng = StdRng::seed_from_u64(2);
        inject_errors(
            &mut rel,
            AttrId(0),
            AttrId(1),
            12,
            ErrorType::Typo,
            &mut rng,
        );
        let after = rel.distinct_count(&AttrSet::single(AttrId(1)));
        // At most 3 typo variants per original value.
        assert!(after <= before + 3 * before);
        assert!(after > before);
    }

    #[test]
    fn bogus_introduces_one_new_value_per_error() {
        let mut rel = clean();
        let before = rel.distinct_count(&AttrSet::single(AttrId(1)));
        let mut rng = StdRng::seed_from_u64(3);
        let m = inject_errors(
            &mut rel,
            AttrId(0),
            AttrId(1),
            8,
            ErrorType::Bogus,
            &mut rng,
        );
        assert_eq!(m, 8);
        assert_eq!(rel.distinct_count(&AttrSet::single(AttrId(1))), before + 8);
    }

    #[test]
    fn per_group_cap_binds() {
        // 2 groups of 4 rows: cap 2 each -> at most 4 errors total.
        let mut rel = Relation::from_pairs((0..8).map(|i| (i as u64 / 4, 0)));
        // Give Y two values so Copy has donors.
        rel.set_value(0, AttrId(1), Value::Int(1));
        rel.set_value(4, AttrId(1), Value::Int(1));
        let mut rng = StdRng::seed_from_u64(4);
        let m = inject_errors(
            &mut rel,
            AttrId(0),
            AttrId(1),
            100,
            ErrorType::Bogus,
            &mut rng,
        );
        assert_eq!(m, 4);
    }

    #[test]
    fn null_rows_never_selected() {
        let mut rel = clean();
        for r in 0..30 {
            rel.set_value(r, AttrId(1), Value::Null);
        }
        let mut rng = StdRng::seed_from_u64(5);
        inject_errors(
            &mut rel,
            AttrId(0),
            AttrId(1),
            60,
            ErrorType::Bogus,
            &mut rng,
        );
        // The 30 NULLs must still be NULL.
        assert_eq!(rel.column(AttrId(1)).null_count(), 30);
    }

    #[test]
    fn x_column_untouched() {
        let mut rel = clean();
        let xs_before: Vec<_> = (0..rel.n_rows()).map(|r| rel.value(r, AttrId(0))).collect();
        let mut rng = StdRng::seed_from_u64(6);
        inject_errors(
            &mut rel,
            AttrId(0),
            AttrId(1),
            20,
            ErrorType::Typo,
            &mut rng,
        );
        for (r, before) in xs_before.iter().enumerate() {
            assert_eq!(&rel.value(r, AttrId(0)), before);
        }
    }

    #[test]
    fn zero_k_is_noop() {
        let mut rel = clean();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            inject_errors(&mut rel, AttrId(0), AttrId(1), 0, ErrorType::Copy, &mut rng),
            0
        );
        assert!(Fd::linear(AttrId(0), AttrId(1)).holds_in(&rel));
    }
}
