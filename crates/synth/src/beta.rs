//! Beta-distribution sampling and skewness control.
//!
//! The paper's synthetic generator draws attribute values from Beta(α, β)
//! distributions on [0, 1] (Section V-A). The offline crate set has no
//! `rand_distr`, so the samplers are implemented here:
//!
//! * standard normal via the Marsaglia polar method,
//! * Gamma via Marsaglia–Tsang (with the `U^(1/a)` boost for shape < 1),
//! * Beta as `G_α / (G_α + G_β)`,
//! * and a solver inverting the closed-form skewness
//!   `2(β−α)√(α+β+1) / ((α+β+2)√(αβ))` so the SKEW benchmark can dial a
//!   target skew directly.

use rand::Rng;

/// A Beta(α, β) distribution on [0, 1].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    /// First shape parameter (α > 0).
    pub alpha: f64,
    /// Second shape parameter (β > 0).
    pub beta: f64,
}

impl Beta {
    /// Creates a Beta distribution.
    ///
    /// # Panics
    /// Panics if a shape parameter is not strictly positive (programmer
    /// error: the distribution is undefined).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "Beta shapes must be positive, got ({alpha}, {beta})"
        );
        Beta { alpha, beta }
    }

    /// The uniform distribution Beta(1, 1).
    pub fn uniform() -> Self {
        Beta::new(1.0, 1.0)
    }

    /// Closed-form skewness `2(β−α)√(α+β+1) / ((α+β+2)√(αβ))`.
    pub fn skewness(&self) -> f64 {
        let (a, b) = (self.alpha, self.beta);
        2.0 * (b - a) * (a + b + 1.0).sqrt() / ((a + b + 2.0) * (a * b).sqrt())
    }

    /// Mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Draws one sample in [0, 1].
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let x = sample_gamma(self.alpha, rng);
        let y = sample_gamma(self.beta, rng);
        if x + y == 0.0 {
            // Numerically possible for tiny shapes; resolve by a fair coin.
            return f64::from(rng.gen::<bool>());
        }
        x / (x + y)
    }

    /// Draws a sample and maps it to a domain index in `0..k`.
    pub fn sample_index(&self, k: usize, rng: &mut impl Rng) -> usize {
        debug_assert!(k > 0);
        let v = self.sample(rng);
        ((v * k as f64) as usize).min(k - 1)
    }

    /// Finds a Beta distribution with the given non-negative target
    /// skewness, following the paper's parameter ranges (α ∈ (0, 1],
    /// β ∈ [1, 10] for moderate skews). Skews ≤ skew(1, 10) are realised
    /// with α = 1 and β ∈ [1, 10]; larger skews keep β = 10 and shrink α.
    ///
    /// # Panics
    /// Panics on negative or non-finite targets (programmer error).
    pub fn with_skewness(target: f64) -> Self {
        assert!(target.is_finite() && target >= 0.0, "bad target {target}");
        if target == 0.0 {
            return Beta::uniform();
        }
        let max_beta_route = Beta::new(1.0, 10.0).skewness();
        if target <= max_beta_route {
            // Bisect β in [1, 10] with α = 1 (skew increases with β).
            let f = |b: f64| Beta::new(1.0, b).skewness() - target;
            let b = bisect(f, 1.0, 10.0);
            Beta::new(1.0, b)
        } else {
            // Bisect α in (0, 1] with β = 10 (skew decreases with α).
            let f = |a: f64| target - Beta::new(a, 10.0).skewness();
            let a = bisect(f, 1e-4, 1.0);
            Beta::new(a, 10.0)
        }
    }
}

/// Bisection for a monotone increasing `f` with `f(lo) ≤ 0 ≤ f(hi)`;
/// clamps to the bracket if the sign condition fails at an endpoint.
fn bisect(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    if f(lo) > 0.0 {
        return lo;
    }
    if f(hi) < 0.0 {
        return hi;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal sample (Marsaglia polar method).
fn sample_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u = rng.gen::<f64>() * 2.0 - 1.0;
        let v = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang; `U^(1/a)` boost for
/// shape < 1.
pub fn sample_gamma(shape: f64, rng: &mut impl Rng) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        // G(a) = G(a+1) · U^(1/a)
        let boost: f64 = rng.gen::<f64>().powf(1.0 / shape);
        return sample_gamma(shape + 1.0, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (3.0 * d.sqrt());
    loop {
        let x = sample_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.gen::<f64>();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(b: Beta, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| b.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_mean_is_half() {
        let m = sample_mean(Beta::uniform(), 20_000, 1);
        assert!((m - 0.5).abs() < 0.01, "mean={m}");
    }

    #[test]
    fn skewed_beta_mean_matches_formula() {
        let b = Beta::new(0.5, 5.0);
        let m = sample_mean(b, 30_000, 2);
        assert!((m - b.mean()).abs() < 0.01, "mean={m} want={}", b.mean());
    }

    #[test]
    fn samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for b in [
            Beta::new(0.1, 9.0),
            Beta::new(1.0, 1.0),
            Beta::new(0.9, 2.0),
        ] {
            for _ in 0..500 {
                let v = b.sample(&mut rng);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn skewness_formula_known_values() {
        assert_eq!(Beta::uniform().skewness(), 0.0);
        // Symmetric: zero skew.
        assert_eq!(Beta::new(0.5, 0.5).skewness(), 0.0);
        // α < β: right tail, positive skew.
        assert!(Beta::new(1.0, 5.0).skewness() > 0.0);
        assert!(Beta::new(5.0, 1.0).skewness() < 0.0);
    }

    #[test]
    fn with_skewness_hits_targets() {
        for target in [0.0, 0.3, 1.0, 1.4, 3.0, 6.0, 10.0] {
            let b = Beta::with_skewness(target);
            assert!(
                (b.skewness() - target).abs() < 1e-6,
                "target={target} got={} (α={}, β={})",
                b.skewness(),
                b.alpha,
                b.beta
            );
        }
    }

    #[test]
    fn with_skewness_respects_paper_ranges() {
        for target in [0.5, 1.0, 5.0, 10.0] {
            let b = Beta::with_skewness(target);
            assert!(b.alpha <= 1.0 && b.alpha > 0.0, "α={}", b.alpha);
            assert!((1.0..=10.0).contains(&b.beta), "β={}", b.beta);
        }
    }

    #[test]
    fn empirical_skew_tracks_target() {
        let b = Beta::with_skewness(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..40_000).map(|_| b.sample(&mut rng)).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let skew = m3 / m2.powf(1.5);
        assert!((skew - 2.0).abs() < 0.15, "empirical skew {skew}");
    }

    #[test]
    fn sample_index_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = Beta::new(0.2, 8.0);
        for _ in 0..1000 {
            assert!(b.sample_index(7, &mut rng) < 7);
        }
        assert_eq!(Beta::uniform().sample_index(1, &mut rng), 0);
    }

    #[test]
    fn gamma_mean_is_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        for shape in [0.5, 1.0, 3.0] {
            let n = 30_000;
            let m: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (m - shape).abs() < 0.05 * shape.max(1.0),
                "shape={shape} mean={m}"
            );
        }
    }
}
