//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds without network access, so this crate provides the
//! exact surface the other members use: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, fast, and statistically strong enough for the synthetic
//! benchmarks and Monte-Carlo estimators built on it. Replace the path
//! dependency with the real crates.io `rand` to swap it out.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, ints uniform).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (only the `u64` convenience constructor is offered).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's multiply-shift (the bias of
/// the plain product is < span / 2^64 — negligible for test workloads,
/// so no rejection loop).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..17i64);
            assert!((-5..17).contains(&v));
            let w: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn reference_through_mut_works() {
        fn takes(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        takes(&mut rng);
        let r = &mut rng;
        takes(r);
    }
}
