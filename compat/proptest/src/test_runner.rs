//! Test-runner plumbing: config, case outcomes, and the deterministic
//! generator feeding the strategies.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of a single property case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

/// SplitMix64 generator seeding every strategy. Deterministic per test
/// (seeded by hashing the test path) unless `PROPTEST_SEED` is set.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's path (FNV-1a), XORed with `PROPTEST_SEED`
    /// when present so whole runs can be re-rolled.
    pub fn deterministic(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}
