//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A reusable recipe for generating random values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// `prop::collection::vec`: a vector whose length is uniform in `size`
/// and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::weighted`: `Some(inner)` with probability `p`.
pub fn weighted<S: Strategy>(p: f64, inner: S) -> OptionStrategy<S> {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    OptionStrategy { p, inner }
}

/// See [`weighted`].
pub struct OptionStrategy<S> {
    p: f64,
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (rng.unit_f64() < self.p).then(|| self.inner.generate(rng))
    }
}

/// `prop::bool::ANY`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// The singleton instance used as `prop::bool::ANY`.
pub const BOOL_ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `prop::sample::select`: a uniformly chosen element of `options`.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> SelectStrategy<T> {
    assert!(!options.is_empty(), "select from empty options");
    SelectStrategy { options }
}

/// See [`select`].
pub struct SelectStrategy<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for SelectStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_collections_in_bounds() {
        let mut rng = TestRng::deterministic("shim::self_test");
        let ints = 0i64..7;
        let vecs = vec((0u64..8, 0u64..6), 0..120);
        let opts = weighted(0.5, 0i64..6);
        for _ in 0..500 {
            let i = ints.generate(&mut rng);
            assert!((0..7).contains(&i));
            let v = vecs.generate(&mut rng);
            assert!(v.len() < 120);
            for &(a, b) in &v {
                assert!(a < 8 && b < 6);
            }
            if let Some(x) = opts.generate(&mut rng) {
                assert!((0..6).contains(&x));
            }
        }
    }

    #[test]
    fn prop_map_and_select() {
        let mut rng = TestRng::deterministic("shim::map_test");
        let s = (0u32..10).prop_map(|x| x * 2);
        let sel = select(std::vec![1.5f64, 2.5]);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
            let f = sel.generate(&mut rng);
            assert!(f == 1.5 || f == 2.5);
        }
    }
}
