//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! range/tuple/array strategies, `prop::collection::vec`,
//! `prop::option::weighted`, `prop::bool::ANY`, `prop::sample::select`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (failing inputs are
//! reported verbatim), and generation is deterministic per test (seeded
//! from the test's module path, overridable via `PROPTEST_SEED`). Case
//! count defaults to 64 and can be raised with `PROPTEST_CASES` or
//! `ProptestConfig::with_cases`.

pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` brings the whole shim surface in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::weighted;
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::BOOL_ANY as ANY;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Runs each contained test function over many generated inputs.
///
/// Supported grammar (a subset of proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0i64..5, 0..80)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ($($strat,)*);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < cases {
                assert!(
                    rejected <= cases.saturating_mul(16) + 1024,
                    "{}: too many prop_assume rejections ({rejected})",
                    stringify!($name),
                );
                #[allow(unused_variables, unused_mut)]
                let ($($arg,)*) = {
                    #[allow(unused_variables)]
                    let ($(ref $arg,)*) = strategies;
                    ($($crate::strategy::Strategy::generate($arg, &mut rng),)*)
                };
                // Render inputs up front: the body may consume them.
                let rendered: ::std::string::String = [
                    $(format!(concat!("  ", stringify!($arg), " = {:?}"), &$arg)),*
                ]
                .join("\n");
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed at case {accepted}: {msg}\ninputs:\n{rendered}",
                        stringify!($name),
                    ),
                }
            }
        }
    )*};
}

/// Fails the surrounding property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the surrounding property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the surrounding property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the surrounding property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
