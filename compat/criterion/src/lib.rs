//! Offline stand-in for the `criterion` crate.
//!
//! Offers the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`) backed by a plain wall-clock
//! harness: each benchmark is warmed up, then timed over
//! `sample_size` samples of adaptively chosen iteration counts, and the
//! per-iteration median / min / mean are printed one line per benchmark.
//!
//! Environment knobs:
//! * `BENCH_SAMPLE_MS` — target milliseconds per sample (default 10).
//! * `BENCH_JSON` — when set to a path, appends one JSON object per
//!   benchmark (`{"id": ..., "median_ns": ..., ...}`) for scripting.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameterless id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its result alive via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let sample_target = sample_target();
        // Warm up and size the per-sample iteration count.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (sample_target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }
}

fn sample_target() -> Duration {
    let ms = std::env::var("BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10u64);
    Duration::from_millis(ms)
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Times `f` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut results = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: self.sample_size,
            results: &mut results,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &mut results);
        self
    }

    /// Times a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut results = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: self.sample_size,
            results: &mut results,
        };
        f(&mut b);
        report(&self.name, &id.id, &mut results);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{id:<40} median {:>12} min {:>12} mean {:>12} ({} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean),
        samples.len()
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": \"{group}/{id}\", \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}",
                median.as_nanos(),
                min.as_nanos(),
                mean.as_nanos(),
                samples.len()
            );
        }
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Times a stand-alone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;
