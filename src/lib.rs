//! # afd
//!
//! A production-quality Rust implementation of
//! **"Measuring Approximate Functional Dependencies: A Comparative
//! Study"** (Parciak et al., ICDE 2024): the 14 AFD measures, the
//! substrates they need, discovery algorithms built on them, and the full
//! experiment suite regenerating every table and figure of the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`relation`] | `afd-relation` | bag relations, contingency tables, PLIs, CSV, NULLs |
//! | [`entropy`] | `afd-entropy` | Shannon/logical entropy, permutation-null expectations |
//! | [`measures`] | `afd-core` | the 14 measures behind the [`Measure`] trait |
//! | [`synth`] | `afd-synth` | Beta-distributed generators, error channels, ERR/UNIQ/SKEW |
//! | [`rwd`] | `afd-rwd` | the simulated real-world benchmark (RWD / RWDe) |
//! | [`eval`] | `afd-eval` | PR/AUC, rank-at-max-recall, separation, budgets |
//! | [`discovery`] | `afd-discovery` | threshold + lattice (non-linear) AFD discovery |
//!
//! ## Quickstart
//!
//! ```
//! use afd::{Relation, Fd, AttrId, MuPlus, Measure};
//!
//! // zip -> city, with one typo in row 5.
//! let rel = Relation::from_pairs([
//!     (94110, 1), (94110, 1), (94110, 1),
//!     (10001, 2), (10001, 2), (10001, 9),
//! ]);
//! let fd = Fd::linear(AttrId(0), AttrId(1));
//! assert!(!fd.holds_in(&rel));                  // not an exact FD...
//! let score = MuPlus.score(&rel, &fd);          // ...but a strong AFD
//! assert!(score > 0.5);
//! ```
//!
//! The paper's practical recommendation is [`MuPlus`] (`µ⁺`): as robust
//! as the best-ranking measure (`RFI′⁺`) but orders of magnitude faster.

pub use afd_core as measures;
pub use afd_discovery as discovery;
pub use afd_entropy as entropy;
pub use afd_eval as eval;
pub use afd_relation as relation;
pub use afd_rwd as rwd;
pub use afd_synth as synth;

// The most common names, flattened for convenience.
pub use afd_core::{
    all_measures, fast_measures, measure_by_name, Fi, G1Prime, G1S, Measure, MeasureClass,
    MuPlus, Pdep, RfiPlus, RfiPrimePlus, Rho, Sfi, Tau, G1, G2, G3, G3Prime,
};
pub use afd_discovery::{discover_all, discover_linear, rank_linear, LatticeConfig};
pub use afd_eval::{auc_pr, rank_at_max_recall, violated_candidates, Labeled};
pub use afd_relation::{
    read_csv, write_csv, AttrId, AttrSet, ContingencyTable, Fd, Relation, Schema, Value,
};
pub use afd_rwd::RwdBenchmark;
pub use afd_synth::{Axis, Beta, ErrorType, SynthBenchmark};
