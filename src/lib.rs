//! # afd
//!
//! A production-quality Rust implementation of
//! **"Measuring Approximate Functional Dependencies: A Comparative
//! Study"** (Parciak et al., ICDE 2024): the 14 AFD measures, the
//! substrates they need, discovery algorithms built on them, and the full
//! experiment suite regenerating every table and figure of the paper.
//!
//! The paper frames AFD measurement as one question — *how strong is
//! `X -> Y`?* — and this workspace answers it through **one front door**:
//! the [`AfdEngine`], a single typed entry point whose request/response
//! pairs cover every way of asking, all returning `Result<_, AfdError>`:
//!
//! | Request | Answers | Backed by |
//! |---|---|---|
//! | [`ScoreRequest`] | one FD under one measure | `afd-core` measures on the snapshot |
//! | [`MatrixRequest`] | a candidate set × a measure set | encoding-cache batch path, threaded |
//! | [`SubscribeRequest`] / [`DeltaRequest`] | scores kept fresh under churn | sharded incremental sessions (`afd-stream`) |
//! | [`DiscoverRequest`] | which FDs hold approximately | threshold / parallel lattice (`afd-discovery`) |
//!
//! The workspace crates behind the door, re-exported as modules:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`engine`] | `afd-engine` | the [`AfdEngine`] front door: requests, responses, [`AfdError`] |
//! | [`relation`] | `afd-relation` | bag relations, contingency tables, PLIs, CSV, NULLs, candidates |
//! | [`entropy`] | `afd-entropy` | Shannon/logical entropy, permutation-null expectations |
//! | [`measures`] | `afd-core` | the 14 measures behind the [`Measure`] trait |
//! | [`synth`] | `afd-synth` | Beta-distributed generators, error channels, ERR/UNIQ/SKEW |
//! | [`rwd`] | `afd-rwd` | the simulated real-world benchmark (RWD / RWDe) |
//! | [`eval`] | `afd-eval` | PR/AUC, rank-at-max-recall, separation, budgeted runs |
//! | [`discovery`] | `afd-discovery` | threshold + lattice (non-linear) AFD discovery |
//! | [`stream`] | `afd-stream` | incremental engine: delta-maintained state, sharded sessions, process workers |
//! | [`wire`] | `afd-wire` | versioned, checksummed binary codec for cross-process state |
//! | [`net`] | `afd-net` | socket transports: TCP shard workers, framed clients, reconnect policy |
//! | [`serve`] | `afd-serve` | multi-tenant serving: session registry, tick scheduler, eviction to disk, socket front door |
//!
//! ## Quickstart
//!
//! ```
//! use afd::{AfdEngine, DeltaRequest, ScoreRequest, SubscribeRequest};
//! use afd::{AttrId, Fd, Relation, RowDelta, Value};
//!
//! // zip -> city, with one typo in row 5.
//! let rel = Relation::from_pairs([
//!     (94110, 1), (94110, 1), (94110, 1),
//!     (10001, 2), (10001, 2), (10001, 9),
//! ]);
//! let mut engine = AfdEngine::from_relation(rel);
//! let fd = Fd::linear(AttrId(0), AttrId(1));
//!
//! // Batch: not an exact FD, but a strong AFD under the paper's
//! // recommended measure µ⁺.
//! let resp = engine.score(&ScoreRequest::new(fd.clone(), "mu+")).unwrap();
//! assert!(resp.score > 0.5 && resp.score < 1.0);
//!
//! // Streaming: subscribe the candidate, feed deltas, scores stay fresh
//! // in O(delta) — bit-identical to recomputing from scratch.
//! let sub = engine.subscribe(&SubscribeRequest::new(fd)).unwrap();
//! let diff = engine.delta(&DeltaRequest::new(RowDelta::insert_only([
//!     vec![Value::Int(94110), Value::Int(7)], // another typo arrives
//! ]))).unwrap();
//! assert!(diff.diffs[sub.candidate].after.mu_plus < resp.score);
//! ```
//!
//! The paper's practical recommendation is [`MuPlus`] (`µ⁺`): as robust
//! as the best-ranking measure (`RFI′⁺`) but orders of magnitude faster.
//!
//! ## Architecture & performance
//!
//! Every measure consumes one of two grouping substrates — the
//! contingency table (`X` vs `Y` joint frequencies) or the PLI (stripped
//! partition) — and the paper shows their construction dominates every
//! experiment. Both therefore run on the **columnar kernel substrate**
//! in [`relation::kernels`]:
//!
//! * All hot loops use dense `u32` remap tables and counter vectors
//!   with *generation stamps* (O(1) bulk clear), reused across calls via
//!   a [`relation::Scratch`] — no `HashMap`s, no per-row key clones,
//!   allocation-free in steady state. Single-threaded callers get a
//!   thread-local scratch transparently; parallel callers hand each
//!   worker its own via the `*_with` kernel variants.
//! * Multi-attribute grouping folds columns through the **pair-code
//!   kernel** ([`relation::combine_codes_with`]): each `(group, code)`
//!   pair packs into one integer key remapped to dense ids — the same
//!   primitive refines lattice nodes during non-linear discovery.
//! * [`ContingencyTable`] and the PLI store their cells/clusters in
//!   flat CSR vectors (one allocation each), built by counting sort
//!   plus stamped tallies.
//! * Non-linear discovery ([`DiscoverRequest`] with `max_lhs > 1`) runs
//!   the **stripped lattice** (`afd-discovery`): nodes store only the
//!   rows of non-singleton partition groups (CSR clusters, TANE-style),
//!   scored through implicit-singleton contingency tables
//!   ([`ContingencyTable::from_stripped_with`]) so per-node work and
//!   memory shrink monotonically up the lattice instead of staying
//!   `O(rows)`. Node buffers come from a recycling
//!   [`discovery::CodePool`] (zero fresh allocations at steady state;
//!   the pool's live high-water mark is surfaced on the response's
//!   [`discovery::LatticeStats`]), per-attribute encodings are computed
//!   once and shared across every RHS search, and supersets of exact
//!   *and* emitted LHS sets are pruned through one bitmask subset index
//!   before their partitions are materialised. The search stays
//!   **level-synchronous parallel** (scoped threads, see
//!   `afd-parallel`): child descriptors are generated sequentially for
//!   deterministic pruning, but refinement *and* scoring run fused in
//!   the worker pass — output is byte-identical for every thread count
//!   (`AFD_THREADS` overrides the worker count; an invalid override is
//!   an [`AfdError::Config`], not a panic), and bit-identical to the
//!   retained full-codes reference in `afd_discovery::naive_lattice`
//!   (proptest-pinned; `cargo run --release -p afd-bench --example
//!   record_lattice` records ~8× end-to-end and ~10× lower peak node
//!   bytes on the 65 536-row fixture in `BENCH_lattice.json`).
//! * [`MatrixRequest`]s share work one level higher too: each **distinct
//!   attribute set is group-encoded once** into a
//!   [`relation::EncodingCache`] (warmed in parallel) and every
//!   candidate's contingency table is assembled from the cached side
//!   codes, instead of re-encoding both sides per candidate.
//!   [`Relation::project`] and `filter_rows` are code-level as well:
//!   `O(rows)` code copies, no `Value` round-trips.
//!
//! ### Streaming: sharded incremental sessions (`afd-stream`)
//!
//! The batch pipeline answers "how strong is `X -> Y` *on this
//! snapshot*"; the streaming requests keep the answer fresh while the
//! relation changes. Data flow behind [`SubscribeRequest`] /
//! [`DeltaRequest`]:
//!
//! 1. [`RowDelta`]s (row inserts + tombstone deletes) enter the engine's
//!    session. A `DeltaRouter` **hash-partitions** every row by shard
//!    key (a subset of each tracked candidate's LHS — so each LHS group
//!    lives wholly inside one shard) and fans the per-shard slices
//!    across N `StreamSession` shards on `afd-parallel` scoped threads.
//! 2. Per subscribed candidate and shard, the session delta-maintains
//!    the dense side encodings (`row -> group id`, the incremental PLI
//!    membership), the joint counts of an [`stream::IncTable`] (cells,
//!    margins, `Σ max`, `Σ n²`), and **count-value histograms** from
//!    which the eleven fast measures ([`StreamScores`]) are read back.
//! 3. Score reads merge the per-shard tables (`IncTable::merge`: sum
//!    counts and histograms; column totals re-derived through a
//!    coordinator-owned global Y-id space). Because every
//!    floating-point reduction iterates ordered histograms, the merge is
//!    order-independent and **bit-identical** to a single unsharded
//!    session — and to a from-scratch rebuild via the batch kernels
//!    (pinned by proptests for N ∈ {1, 2, 3, 7}).
//! 4. An apply costs `O(|delta|)`, not `O(N rows)`: `BENCH_stream.json`
//!    records ~16× vs full recompute at a 1/256 delta on 65 536 rows,
//!    and `BENCH_shard.json` (from `cargo run --release -p afd-bench
//!    --example record_shard`) records the per-shard work dropping
//!    towards 1/N of the single-session cost (the host is single-core,
//!    so work-per-shard is the honest metric, not wall-clock).
//! 5. Periodic compaction verifies **per shard** against the batch
//!    kernels (exact PLI/table equality, bit-exact scores) before
//!    dropping tombstones — divergence surfaces as an error instead of
//!    silently serving wrong scores.
//!
//! ### Wire format & out-of-process shard workers (`afd-wire`)
//!
//! The shards behind the streaming requests are **pluggable**
//! ([`stream::ShardBackend`]): in-process sessions (default, zero
//! transport cost) or `afd shard-worker` **child processes** —
//! [`EngineConfig`]`::backend` picks
//! ([`engine::StreamBackend::Process`]). The process topology rides
//! [`wire`], a hand-rolled binary codec (no serde, no network stack —
//! the build is offline):
//!
//! * **Framing**: every message travels as `AFDW` magic + version +
//!   kind byte + `u32` length + payload + FNV-1a checksum over header
//!   and payload; any bit flip anywhere is caught before decoding, and
//!   corrupt input always surfaces as a typed
//!   [`wire::DecodeError`] — never a panic (fuzz-pinned).
//! * **Exactness**: everything is fixed-width little-endian, floats
//!   travel as IEEE-754 bit patterns, and every aggregate the shards
//!   ship (`IncTable` counts, margins, histograms) is an integer — so a
//!   process-backed session's merged score reads are **bit-identical**
//!   to the in-process backend and the batch kernels (proptest-pinned
//!   for N ∈ {1, 2, 4} worker processes).
//! * **Fault model**: the shard fabric is **self-healing**. Every
//!   coordinator→worker request carries a deadline, and a worker that
//!   dies, corrupts a frame or stalls past it surfaces as a structured
//!   [`stream::TransportError`] (step, shard, worker stderr tail) —
//!   which the supervisor *recovers from*: respawn the worker, restore
//!   its per-shard checkpoint, replay the delta log since it, retry the
//!   in-flight request (all canonical wire forms, so the healed shard is
//!   bit-identical by construction; [`stream::RecoveryConfig`] sets the
//!   checkpoint cadence and retry budget, `BENCH_recovery.json` records
//!   the latency-vs-K trade-off). Only an exhausted retry budget poisons
//!   the session — reads keep serving the last consistent state,
//!   mutation is refused. Seeded fault injection ([`stream::FaultPlan`]
//!   over kill / truncate / garbage / stall, interpreted by the
//!   [`stream::ChaosShard`] test backend or real workers via the
//!   `AFD_WORKER_FAULTS` env hook) proptest-pins that any single fault
//!   at any protocol step recovers bit-identically to a fault-free run.
//! * **Persistence**: whole sessions save/load as framed snapshots
//!   ([`SnapshotRequest`] / [`RestoreRequest`] on the engine,
//!   `afd save` / `afd load` in the CLI) — live rows in global order
//!   (columnar), shard topology, subscriptions; restore resumes with
//!   bit-identical scores. `ShardedSession::snapshot` itself is
//!   code-level (shared dictionaries, O(rows) `u32` copies — the old
//!   per-row `Value` round-trips are gone).
//!   `cargo run --release -p afd-bench --example record_wire` records
//!   codec throughput (~GiB/s encode on the 65 536-row fixture) and the
//!   process-backend apply overhead in `BENCH_wire.json`.
//!
//! ### Sockets: TCP shard workers & the serve front door (`afd-net`)
//!
//! The same checksummed frames cross machines, not just pipes. [`net`]
//! is a small transport crate (depends only on [`wire`], so the
//! streaming and serving layers both build on it without cycles)
//! exposing one [`net::Transport`] abstraction with two
//! implementations: [`net::StdioTransport`] — the existing child
//! process's stdin/stdout — and [`net::TcpTransport`] — a dialed TCP
//! connection. `afd shard-worker --listen ADDR` serves the worker
//! protocol over a socket (thread per connection, one session each),
//! [`engine::StreamBackend::Tcp`] points a session's shards at such
//! listeners, and the supervisor's heal path carries over unchanged:
//! a severed connection is a typed transport error, `reconnect`
//! redials with exponential backoff ([`net::ReconnectPolicy`] — the
//! TCP analogue of respawning a child), and checkpoint-restore +
//! replay make the healed shard bit-identical by construction
//! (integration tests pin TCP topologies bit-identical to in-process
//! and stdio ones for N ∈ {1, 2, 4}, through kills and stalls). Bad
//! addresses are an [`AfdError::Config`] at the engine boundary, not a
//! late dial failure.
//!
//! The serving layer gets a socket front door on the same frames:
//! [`serve::ServeFront`] wraps an [`AfdServe`] in an accept loop
//! (`afd serve --listen ADDR`), speaking a typed request/response
//! protocol (register / enqueue / tick / subscribe / scores / release /
//! stats) where **every refusal is an answer, never a disconnect** —
//! auth failures, stale handles, and backpressure all travel as the
//! same [`serve::ServeError`] values the library returns, and a
//! connection-count cap answers a typed `Backpressure` frame before
//! closing. Registration is gated by an optional shared token plus a
//! tenant label ([`serve::FrontConfig`]; TLS is a recorded follow-up —
//! the token authenticates, the network is assumed trusted), and a
//! dropped connection deterministically releases — or, with
//! [`serve::DisconnectPolicy::Park`], evicts-to-disk — the handles it
//! registered, so crashed clients cannot leak sessions.
//! [`serve::ServeClient`] (and `afd connect ADDR` in the CLI) drives
//! it end-to-end with a deadline on every request; `cargo run
//! --release -p afd-bench --example record_net` records the loopback
//! transport tax, serve round-trip latency, and connection-churn
//! accept rate in `BENCH_net.json`.
//!
//! ### Serving layer: million-session multi-tenancy (`afd-serve`)
//!
//! Everything above runs *one* engine; [`AfdServe`] runs a registry of
//! them as a long-lived multi-tenant server. Data flow: a caller
//! registers a session (a whole [`AfdEngine`], or just its framed
//! snapshot bytes via `register_snapshot` — no engine is built until
//! first touch), gets back a [`serve::SessionHandle`], and from then on
//! enqueues [`RowDelta`]s against the handle; a budget-bounded `tick`
//! drains the pending queues and applies them. Four pieces make that
//! hold up at six-figure session counts:
//!
//! * **Generational-slab registry**: handles are slot index +
//!   generation, so slots recycle without handle confusion — a handle
//!   to a released session fails as the typed
//!   [`serve::ServeError::StaleHandle`], never aliases a new tenant.
//! * **Budget-based tick scheduler**: [`serve::TickBudget`] bounds both
//!   total deltas per tick and the per-session burst, and the ready
//!   ring round-robins so one noisy tenant cannot starve the rest; an
//!   invalid delta is dropped and counted on the [`serve::TickReport`],
//!   never aborts the tick for other tenants.
//! * **Admission control & backpressure**: per-session and global
//!   pending caps plus a registry cap, all enforced *before* any state
//!   changes as the typed [`serve::ServeError::Backpressure`] /
//!   `AtCapacity` — callers shed load instead of OOMing the server.
//! * **Cold-session eviction**: beyond `resident_cap` engines, the LRU
//!   session is saved to a spill file (the same framed
//!   [`SessionSnapshot`] as `afd save`) and its engine torn down; the
//!   next touch restores it transparently — into either
//!   [`engine::StreamBackend`], so spilled sessions can wake up onto
//!   process-backed shards. Restore is score-invisible: proptests pin
//!   evict → restore → continue-applying **bit-identical**
//!   (`f64::to_bits`) to a never-evicted twin, for both backends.
//!
//! `afd serve` drives a scripted multi-tenant workload from the CLI,
//! and `cargo run --release -p afd-bench --example record_serve`
//! records the scaling story in `BENCH_serve.json`: 120 000 registered
//! sessions under a 1 024-resident cap hold serving RSS at ~39 MiB
//! (registration costs a spill file, not an engine), p50 apply ~7 µs
//! with the p99 carrying the cold-restore tail.
//!
//! The server is **crash-safe** by default: every registry transition
//! (register / evict / restore / release) is appended to a checksummed
//! write-ahead journal (`registry.afdj` in the spill directory, afd-wire
//! frames, compacted into checkpoints as it outgrows the live set), and
//! every spill file is written atomically (tmp → write → fsync →
//! rename) *before* its journal record — so a crash at any instant
//! leaves either the old state or the new state, never a torn hybrid.
//! [`serve::AfdServe::recover`] cold-starts a server from the directory
//! alone: it replays the journal, validates every spill file against
//! it, and moves anything corrupt or unaccounted-for into
//! `quarantine/` — reported file-by-file on the typed
//! [`serve::RecoverReport`], never silently deleted. Crash-injection
//! proptests tear, garble, or drop every journal and spill write in a
//! seeded workload and assert recovery always succeeds, an acknowledged
//! eviction always survives bit-identically, and the recovered server
//! keeps serving (both backends; `afd serve --recover` drives the round
//! trip from the CLI). Durability knobs live on
//! [`serve::DurabilityConfig`] (`ephemeral()` restores the old
//! RAM-only contract); `record_durability` records recovery wall-clock
//! versus registry size and the journal's ≤ 10% eviction overhead in
//! `BENCH_durability.json`.
//!
//! The original hash-based inner loops are retained in
//! [`relation::naive`]; property tests pin `optimized ≡ naive`, and
//! `cargo run --release -p afd-bench --example record_substrate`
//! regenerates `BENCH_substrate.json` with optimized-vs-naive timings
//! (≥ 3–6× on the 8 192-row bench fixture for contingency construction
//! and PLI refinement). `cargo bench -p afd-bench` runs the wider
//! criterion-style suites, including 65 536-row fixtures and end-to-end
//! discovery.

pub use afd_core as measures;
pub use afd_discovery as discovery;
pub use afd_engine as engine;
pub use afd_entropy as entropy;
pub use afd_eval as eval;
pub use afd_net as net;
pub use afd_relation as relation;
pub use afd_rwd as rwd;
pub use afd_serve as serve;
pub use afd_stream as stream;
pub use afd_synth as synth;
pub use afd_wire as wire;

// The most common names, flattened for convenience.
pub use afd_core::{
    all_measures, fast_measures, measure_by_name, Fi, G1Prime, G3Prime, Measure, MeasureClass,
    MuPlus, Pdep, RfiPlus, RfiPrimePlus, Rho, Sfi, Tau, G1, G1S, G2, G3,
};
pub use afd_engine::{
    AfdEngine, AfdError, CandidateSet, DeltaRequest, DeltaResponse, DiscoverRequest,
    DiscoverResponse, EngineConfig, MatrixRequest, MatrixResponse, RestoreRequest, ScoreRequest,
    ScoreResponse, SnapshotRequest, SnapshotResponse, SubscribeRequest, SubscribeResponse,
};
pub use afd_eval::{auc_pr, rank_at_max_recall, Labeled};
pub use afd_relation::{
    linear_candidates, read_csv, violated_candidates, write_csv, AttrId, AttrSet, ContingencyTable,
    Fd, Relation, Schema, Value,
};
pub use afd_rwd::RwdBenchmark;
pub use afd_serve::{
    AfdServe, DurabilityConfig, RecoverReport, ServeConfig, ServeError, SessionHandle,
};
pub use afd_stream::{
    RowDelta, ScoreDiff, SessionSnapshot, ShardedSession, StreamScores, StreamSession,
};
pub use afd_synth::{Axis, Beta, ErrorType, SynthBenchmark};
