//! # afd
//!
//! A production-quality Rust implementation of
//! **"Measuring Approximate Functional Dependencies: A Comparative
//! Study"** (Parciak et al., ICDE 2024): the 14 AFD measures, the
//! substrates they need, discovery algorithms built on them, and the full
//! experiment suite regenerating every table and figure of the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`relation`] | `afd-relation` | bag relations, contingency tables, PLIs, CSV, NULLs |
//! | [`entropy`] | `afd-entropy` | Shannon/logical entropy, permutation-null expectations |
//! | [`measures`] | `afd-core` | the 14 measures behind the [`Measure`] trait |
//! | [`synth`] | `afd-synth` | Beta-distributed generators, error channels, ERR/UNIQ/SKEW |
//! | [`rwd`] | `afd-rwd` | the simulated real-world benchmark (RWD / RWDe) |
//! | [`eval`] | `afd-eval` | PR/AUC, rank-at-max-recall, separation, budgets, streaming runs |
//! | [`discovery`] | `afd-discovery` | threshold + lattice (non-linear) AFD discovery |
//! | [`stream`] | `afd-stream` | incremental engine: delta-maintained PLIs, tables, scores |
//!
//! ## Quickstart
//!
//! ```
//! use afd::{Relation, Fd, AttrId, MuPlus, Measure};
//!
//! // zip -> city, with one typo in row 5.
//! let rel = Relation::from_pairs([
//!     (94110, 1), (94110, 1), (94110, 1),
//!     (10001, 2), (10001, 2), (10001, 9),
//! ]);
//! let fd = Fd::linear(AttrId(0), AttrId(1));
//! assert!(!fd.holds_in(&rel));                  // not an exact FD...
//! let score = MuPlus.score(&rel, &fd);          // ...but a strong AFD
//! assert!(score > 0.5);
//! ```
//!
//! The paper's practical recommendation is [`MuPlus`] (`µ⁺`): as robust
//! as the best-ranking measure (`RFI′⁺`) but orders of magnitude faster.
//!
//! ## Architecture & performance
//!
//! Every measure consumes one of two grouping substrates — the
//! contingency table (`X` vs `Y` joint frequencies) or the PLI (stripped
//! partition) — and the paper shows their construction dominates every
//! experiment. Both therefore run on the **columnar kernel substrate**
//! in [`relation::kernels`]:
//!
//! * All hot loops use dense `u32` remap tables and counter vectors
//!   with *generation stamps* (O(1) bulk clear), reused across calls via
//!   a [`relation::Scratch`] — no `HashMap`s, no per-row key clones,
//!   allocation-free in steady state. Single-threaded callers get a
//!   thread-local scratch transparently; parallel callers hand each
//!   worker its own via the `*_with` kernel variants.
//! * Multi-attribute grouping folds columns through the **pair-code
//!   kernel** ([`relation::combine_codes_with`]): each `(group, code)`
//!   pair packs into one integer key remapped to dense ids — the same
//!   primitive refines lattice nodes during non-linear discovery.
//! * [`ContingencyTable`] and the PLI store their cells/clusters in
//!   flat CSR vectors (one allocation each), built by counting sort
//!   plus stamped tallies.
//! * Non-linear discovery ([`discover_all`]) is **level-synchronous
//!   parallel** (scoped threads, see `afd-parallel`): candidates are
//!   generated sequentially for deterministic pruning, evaluated across
//!   workers, and merged in order — output is byte-identical for every
//!   thread count (`AFD_THREADS` overrides the worker count).
//!   Minimality pruning uses a bitmask subset index instead of scanning
//!   all emitted FDs.
//!
//! * Candidate scoring shares work one level higher too: `afd-eval`'s
//!   `score_matrix` group-encodes each **distinct attribute set once**
//!   into a [`relation::EncodingCache`] (warmed in parallel) and
//!   assembles every candidate's contingency table from the cached side
//!   codes, instead of re-encoding both sides per candidate.
//!   [`Relation::project`] and `filter_rows` are code-level as well:
//!   `O(rows)` code copies, no `Value` round-trips.
//!
//! ### Streaming: the incremental engine (`afd-stream`)
//!
//! The batch pipeline answers "how strong is `X -> Y` *on this
//! snapshot*"; the [`stream`] subsystem keeps the answer fresh while the
//! relation changes. Data flow:
//!
//! 1. [`RowDelta`]s (row inserts + tombstone deletes) enter a
//!    [`StreamSession`] over an append-only, dictionary-stable row log.
//! 2. Per subscribed candidate, the session delta-maintains the dense
//!    side encodings (`row -> group id`, the incremental PLI
//!    membership), the joint counts of an `IncTable` (cells, margins,
//!    `Σ max`, `Σ n²`), and **count-value histograms** from which the
//!    eleven fast measures ([`StreamScores`]) are read back.
//! 3. Only touched groups are re-aggregated — Shannon entropy terms are
//!    patched group-by-group through the histograms, never recomputed —
//!    so an apply costs `O(|delta|)`, not `O(N)`: `BENCH_stream.json`
//!    (from `cargo run --release -p afd-bench --example record_stream`)
//!    records ~16× vs full recompute at a 1/256 delta on 65 536 rows.
//! 4. Because every floating-point reduction iterates ordered
//!    histograms, scores are *bit-identical* to a from-scratch rebuild;
//!    periodic compaction exploits that to verify the incremental state
//!    against the batch kernels (exact PLI/table equality, bit-exact
//!    scores) before dropping tombstones.
//!
//! The original hash-based inner loops are retained in
//! [`relation::naive`]; property tests pin `optimized ≡ naive`, and
//! `cargo run --release -p afd-bench --example record_substrate`
//! regenerates `BENCH_substrate.json` with optimized-vs-naive timings
//! (≥ 3–6× on the 8 192-row bench fixture for contingency construction
//! and PLI refinement). `cargo bench -p afd-bench` runs the wider
//! criterion-style suites, including 65 536-row fixtures and end-to-end
//! `discover_all`.

pub use afd_core as measures;
pub use afd_discovery as discovery;
pub use afd_entropy as entropy;
pub use afd_eval as eval;
pub use afd_relation as relation;
pub use afd_rwd as rwd;
pub use afd_stream as stream;
pub use afd_synth as synth;

// The most common names, flattened for convenience.
pub use afd_core::{
    all_measures, fast_measures, measure_by_name, Fi, G1Prime, G3Prime, Measure, MeasureClass,
    MuPlus, Pdep, RfiPlus, RfiPrimePlus, Rho, Sfi, Tau, G1, G1S, G2, G3,
};
pub use afd_discovery::{discover_all, discover_linear, rank_linear, LatticeConfig};
pub use afd_eval::{auc_pr, rank_at_max_recall, violated_candidates, Labeled};
pub use afd_relation::{
    read_csv, write_csv, AttrId, AttrSet, ContingencyTable, Fd, Relation, Schema, Value,
};
pub use afd_rwd::RwdBenchmark;
pub use afd_stream::{RowDelta, ScoreDiff, StreamScores, StreamSession};
pub use afd_synth::{Axis, Beta, ErrorType, SynthBenchmark};
