//! Non-linear AFD discovery: find a composite-key dependency
//! `(airline, flight_no) -> destination` that no single attribute
//! explains.
//!
//! The paper's conclusion motivates exactly this: as the LHS grows,
//! LHS-uniqueness tends to 1, so only the uniqueness-insensitive
//! measures (g3', RFI'+, mu+) are safe to use in a lattice search.
//!
//! ```text
//! cargo run --release --example nonlinear_discovery
//! ```

use afd::{AfdEngine, DiscoverRequest, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn flights(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema =
        Schema::new(["airline", "flight_no", "destination", "gate", "delay"]).expect("unique");
    let mut rel = Relation::empty(schema);
    for _ in 0..n {
        let airline = rng.gen_range(0..6i64);
        let flight_no = rng.gen_range(0..40i64);
        // destination is determined by (airline, flight_no)...
        let mut destination = (airline * 131 + flight_no * 17) % 25;
        // ...except for 1% schedule-change errors.
        if rng.gen::<f64>() < 0.01 {
            destination = rng.gen_range(0..25);
        }
        let gate = rng.gen_range(0..30i64);
        let delay = rng.gen_range(0..90i64);
        rel.push_row([
            Value::Int(airline),
            Value::Int(flight_no),
            Value::Int(destination),
            Value::Int(gate),
            Value::Int(delay),
        ])
        .expect("arity");
    }
    rel
}

fn main() {
    let rel = flights(6000, 4);
    let schema = rel.schema().clone();
    println!("searching for minimal AFDs with |LHS| <= 2, epsilon = 0.9, measure = mu+ ...\n");
    let mut engine = AfdEngine::from_relation(rel);
    let found = engine
        .discover(&DiscoverRequest {
            measure: "mu+".into(),
            epsilon: 0.9,
            max_lhs: 2,
        })
        .expect("registered measure, valid config")
        .found;
    if found.is_empty() {
        println!("no AFDs found — try lowering epsilon");
    }
    for d in &found {
        println!(
            "  {:<44} score {:.4}",
            d.fd.display(&schema).to_string(),
            d.score
        );
    }
    println!(
        "\nThe composite dependency (airline,flight_no) -> destination is\n\
         found despite the injected errors; neither airline nor flight_no\n\
         alone determines the destination, and exact FD discovery would\n\
         miss it entirely."
    );
}
