//! Miniature Figure 1: how measure separation reacts to error rate,
//! LHS-uniqueness and RHS-skew.
//!
//! Runs a reduced ERR / UNIQ / SKEW sweep and prints δ(f, B) for a
//! representative measure of each class plus the two measures the paper
//! singles out as having no distinguishing power (g1, SFI).
//!
//! ```text
//! cargo run --release --example sensitivity_analysis
//! ```

use afd::eval::sensitivity_sweep;
use afd::{measure_by_name, Axis, SynthBenchmark};

fn main() {
    let measures: Vec<_> = ["g3'", "FI", "mu+", "g1", "SFI"]
        .into_iter()
        .map(|n| measure_by_name(n).expect("registered"))
        .collect();
    for axis in [Axis::ErrorRate, Axis::LhsUniqueness, Axis::RhsSkew] {
        let bench = SynthBenchmark {
            axis,
            steps: 6,
            tables_per_step: 6,
            rows: (200, 800),
            seed: 99,
        };
        let sweep = sensitivity_sweep(&bench, &measures, 4);
        println!(
            "\nseparation on {} (higher = better discrimination):",
            axis.name()
        );
        print!("{:>10}", "param");
        for m in &measures {
            print!("{:>8}", m.name());
        }
        println!();
        for step in &sweep {
            print!("{:>10.3}", step.param);
            for m in 0..measures.len() {
                print!("{:>8.3}", step.separation(m));
            }
            println!();
        }
    }
    println!(
        "\nReadings (paper Section V): g1 and SFI hover near zero everywhere;\n\
         FI's separation decays as LHS-uniqueness grows; g3' decays as\n\
         RHS-skew grows; mu+ stays high on all three axes."
    );
}
