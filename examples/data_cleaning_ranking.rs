//! Data-cleaning scenario: rank the AFD candidates of a dirty table.
//!
//! The paper's motivating use case — a relation whose design FDs were
//! obscured by data-entry errors. A good measure ranks the true design
//! FDs above the accidental correlations, so a domain expert only has to
//! inspect a handful of top candidates.
//!
//! ```text
//! cargo run --example data_cleaning_ranking
//! ```

use afd::{AfdEngine, AttrId, DiscoverRequest, Fd, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a synthetic "orders" table with two design FDs
/// (`product -> category`, `warehouse -> region`), 1% injected errors,
/// and several correlated-but-meaningless columns.
fn dirty_orders(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new([
        "order_id",
        "product",
        "category",
        "warehouse",
        "region",
        "quantity",
    ])
    .expect("unique names");
    let mut rel = Relation::empty(schema);
    for i in 0..n {
        let product = rng.gen_range(0..60i64);
        let mut category = product % 8; // product -> category by design
        let warehouse = rng.gen_range(0..12i64);
        let mut region = warehouse % 4; // warehouse -> region by design
                                        // 1% data-entry errors on each derived column.
        if rng.gen::<f64>() < 0.01 {
            category = rng.gen_range(0..8);
        }
        if rng.gen::<f64>() < 0.01 {
            region = rng.gen_range(0..4);
        }
        let quantity = rng.gen_range(1..20i64);
        rel.push_row([
            Value::Int(i as i64),
            Value::Int(product),
            Value::Int(category),
            Value::Int(warehouse),
            Value::Int(region),
            Value::Int(quantity),
        ])
        .expect("arity matches");
    }
    rel
}

fn main() {
    let rel = dirty_orders(5000, 7);
    let design = [
        Fd::linear(AttrId(1), AttrId(2)), // product -> category
        Fd::linear(AttrId(3), AttrId(4)), // warehouse -> region
    ];
    println!("design FDs obscured by errors:");
    for fd in &design {
        println!(
            "  {}   (holds exactly: {})",
            fd.display(rel.schema()),
            fd.holds_in(&rel)
        );
    }

    let mut engine = AfdEngine::from_relation(rel.clone());
    for name in ["mu+", "g3"] {
        // Ranking = threshold discovery at epsilon 0 (all violated
        // candidates, sorted by descending score).
        let ranked = engine
            .discover(&DiscoverRequest {
                measure: name.into(),
                epsilon: 0.0,
                max_lhs: 1,
            })
            .expect("registered measure")
            .found;
        println!("\ntop 5 candidates by {name}:");
        for (i, d) in ranked.iter().take(5).enumerate() {
            let marker = if design.contains(&d.fd) {
                "  <- design FD"
            } else {
                ""
            };
            println!(
                "  {}. {:<28} {:.4}{marker}",
                i + 1,
                d.fd.display(rel.schema()).to_string(),
                d.score
            );
        }
        let worst_rank = design
            .iter()
            .map(|fd| {
                ranked
                    .iter()
                    .position(|d| &d.fd == fd)
                    .map_or(usize::MAX, |p| p + 1)
            })
            .max()
            .expect("two design FDs");
        println!("  -> all design FDs recovered within the top {worst_rank}");
    }
}
