//! Quickstart: score one candidate FD under all 14 measures.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use afd::{all_measures, read_csv, AttrId, Fd};

fn main() {
    // A small dirty table: `zip` determines `city` by design, but row 6
    // has a data-entry error and row 7 a missing city.
    let csv = "\
zip,city,customer
94110,San Francisco,alice
94110,San Francisco,bob
94110,San Francisco,carol
10001,New York,dan
10001,New York,erin
10001,Newyork,frank
73301,,grace
73301,Austin,heidi
";
    let rel = read_csv(csv.as_bytes()).expect("well-formed CSV");
    let zip_city = Fd::linear(AttrId(0), AttrId(1));

    println!(
        "relation: {} rows, {} attributes",
        rel.n_rows(),
        rel.arity()
    );
    println!(
        "zip -> city holds exactly? {}  (row 6 has a typo)",
        zip_city.holds_in(&rel)
    );
    println!("\n{:<8} {:>8}   class", "measure", "score");
    println!("{}", "-".repeat(34));
    for m in all_measures() {
        let score = m.score(&rel, &zip_city);
        println!("{:<8} {:>8.4}   {}", m.name(), score, m.class());
    }
    println!(
        "\nAll measures score in [0, 1]; 1 means the FD holds exactly.\n\
         The paper's recommendation for AFD discovery is mu+ — as robust\n\
         as RFI'+ but cheap to compute."
    );
}
