//! Evaluate all measures on one relation of the simulated RWD benchmark
//! and report AUC-PR plus rank-at-max-recall — a single-relation slice of
//! the paper's Figure 2.
//!
//! ```text
//! cargo run --release --example rwd_benchmark
//! ```

use afd::eval::{auc_pr, rank_at_max_recall, violated_candidates, Labeled};
use afd::{all_measures, RwdBenchmark};

fn main() {
    // dblp10k (R3): the "challenging" relation — near-key trap columns
    // give violation-style measures a hard time.
    let bench = RwdBenchmark::generate_scaled(0.01, 42);
    let r3 = &bench.relations[2];
    println!(
        "relation {}: {} rows, {} attributes, {} PFDs, {} AFDs (ground truth)",
        r3.name,
        r3.relation.n_rows(),
        r3.relation.arity(),
        r3.pfds.len(),
        r3.afds.len()
    );
    let cands = violated_candidates(&r3.relation);
    println!("violated candidate FDs: {}\n", cands.len());

    println!("{:<8} {:>8} {:>8}", "measure", "AUC-PR", "r@mr");
    println!("{}", "-".repeat(28));
    for m in all_measures() {
        // The slow measures are fine here: one relation at 1% scale.
        let labels: Vec<Labeled> = cands
            .iter()
            .map(|fd| Labeled::new(m.score(&r3.relation, fd), r3.afds.contains(fd)))
            .collect();
        println!(
            "{:<8} {:>8.3} {:>8}",
            m.name(),
            auc_pr(&labels),
            rank_at_max_recall(&labels)
        );
    }
    println!(
        "\nExpected shape (paper Fig. 2): g3', RFI'+ and mu+ reach optimal\n\
         rank-at-max-recall ({} here); the LHS-uniqueness-sensitive measures\n\
         (rho, g2, g3, FI, pdep, tau, g1) are trapped by the near-key columns.",
        r3.afds.len()
    );
}
